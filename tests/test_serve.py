"""Serving layer: contracts, hot-ROM cache, coalescing, tiers, daemon.

Covers the serving stack end to end — boundary validation, the three
reduce tiers (hot / disk / cold), request coalescing with bit-identical
scatter, cooperative cancellation, HTTP backpressure (429) and
deadlines (504) — plus the concurrent-store-access guarantees the
long-lived daemon rests on (atomic overwrites, no spurious
quarantines, basis-SHA agreement after overwrite).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.analysis.distortion import distortion_sweep
from repro.analysis.reporting import format_stats_line
from repro.circuits.examples import quadratic_rc_ladder_netlist
from repro.engine import (
    SerialExecutor,
    SolvePlan,
    TaskCancelled,
    ThreadPoolExecutor,
)
from repro.errors import ValidationError
from repro.mor import AssociatedTransformMOR
from repro.pipeline import ReductionJob, run_pipeline
from repro.serve import (
    HotROMCache,
    InfoRequest,
    ReduceRequest,
    ReproService,
    ServeDaemon,
    ServeMetrics,
    SimulateRequest,
    SweepCoalescer,
    SweepRequest,
)
from repro.store import ModelStore, ReductionArtifact, fingerprint_system


def ladder_spec(n=12, **kwargs):
    return {
        "generator": "quadratic_rc_ladder_netlist",
        "args": {"n_nodes": n, **kwargs},
    }


REDUCE = {"orders": [3, 2, 0]}
SWEEP = {"start": 0.05, "stop": 0.3, "points": 5}


def build_artifact(n=12, orders=(3, 2, 0)):
    system = quadratic_rc_ladder_netlist(n_nodes=n).compile()
    reducer = AssociatedTransformMOR(orders=orders)
    rom = reducer.reduce(system)
    artifact = ReductionArtifact.from_reduction(
        rom, system=system, reducer=reducer,
        system_fingerprint=fingerprint_system(system),
    )
    return system, reducer, artifact


# ---------------------------------------------------------------------------
# contracts
# ---------------------------------------------------------------------------

class TestContracts:
    def test_unknown_fields_rejected(self):
        with pytest.raises(ValidationError, match="unknown sweep fields"):
            SweepRequest.from_payload(
                {"spec": ladder_spec(), "sweeep": SWEEP}
            )

    def test_spec_required(self):
        with pytest.raises(ValidationError, match="needs a 'spec'"):
            InfoRequest.from_payload({})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValidationError, match="JSON object"):
            ReduceRequest.from_payload([1, 2, 3])

    def test_job_falls_back_to_spec_section(self):
        spec = dict(ladder_spec(), reduce=REDUCE, sweep=SWEEP)
        request = SweepRequest.from_payload({"spec": spec})
        assert request.reduce_job.orders == (3, 2, 0)
        assert request.sweep_job.omegas.size == 5

    def test_payload_job_overrides_spec_section(self):
        spec = dict(ladder_spec(), reduce={"orders": [5, 0, 0]})
        request = ReduceRequest.from_payload(
            {"spec": spec, "reduce": REDUCE}
        )
        assert request.reduce_job.orders == (3, 2, 0)

    def test_reduce_requires_a_job(self):
        with pytest.raises(ValidationError, match="no reduction"):
            ReduceRequest.from_payload({"spec": ladder_spec()})

    def test_sweep_requires_a_grid(self):
        with pytest.raises(ValidationError, match="no sweep"):
            SweepRequest.from_payload({"spec": ladder_spec()})

    def test_simulate_requires_a_transient(self):
        with pytest.raises(ValidationError, match="no transient"):
            SimulateRequest.from_payload({"spec": ladder_spec()})

    def test_checkpoint_without_reduce_rejected(self):
        with pytest.raises(ValidationError, match="checkpoint/resume"):
            SweepRequest.from_payload(
                {"spec": ladder_spec(), "sweep": SWEEP, "resume": True}
            )

    def test_bad_job_section_rejected_at_boundary(self):
        with pytest.raises(ValidationError, match="unknown SweepJob"):
            SweepRequest.from_payload(
                {"spec": ladder_spec(), "sweep": {"strt": 0.1}}
            )


# ---------------------------------------------------------------------------
# hot-ROM cache
# ---------------------------------------------------------------------------

class TestHotROMCache:
    def test_lru_eviction_order(self):
        _, _, artifact = build_artifact(n=8, orders=(2, 0, 0))
        cache = HotROMCache(capacity=2)
        cache.put("a", artifact)
        cache.put("b", artifact)
        assert cache.get("a") is not None  # refresh "a": "b" is now LRU
        cache.put("c", artifact)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats()["evicted"] == 1

    def test_verify_on_admit_rejects_tampered_basis(self):
        _, _, artifact = build_artifact(n=8, orders=(2, 0, 0))
        artifact.rom.basis[0, 0] += 1.0  # corrupt after hashing
        cache = HotROMCache(capacity=2)
        assert cache.put("bad", artifact) is None
        assert "bad" not in cache
        assert cache.stats()["rejected"] == 1

    def test_capacity_zero_disables(self):
        _, _, artifact = build_artifact(n=8, orders=(2, 0, 0))
        cache = HotROMCache(capacity=0)
        assert cache.put("a", artifact) is None
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_explicit_is_retained(self):
        _, _, artifact = build_artifact(n=8, orders=(2, 0, 0))
        cache = HotROMCache(capacity=2)
        entry = cache.put("a", artifact)
        assert entry.explicit() is entry.explicit()

    def test_overwrite_replaces_entry(self):
        _, _, old = build_artifact(n=8, orders=(2, 0, 0))
        _, _, new = build_artifact(n=8, orders=(3, 0, 0))
        cache = HotROMCache(capacity=2)
        cache.put("k", old)
        cache.put("k", new)
        entry = cache.get("k")
        assert entry.artifact is new
        assert entry.artifact.verify()

    def test_warm_start_from_store_recency(self, tmp_path):
        system, reducer, artifact = build_artifact(n=8, orders=(2, 0, 0))
        store = ModelStore(tmp_path)
        key = store.key_for(system, reducer)
        store.store(key, artifact)
        cache = HotROMCache(capacity=4)
        assert cache.warm_start(store) == 1
        assert key in cache


# ---------------------------------------------------------------------------
# coalescer
# ---------------------------------------------------------------------------

class TestCoalescer:
    def test_sequential_sweeps_are_separate_flights(self):
        co = SweepCoalescer()
        evaluate = lambda union: (union * 2, union * 3)  # noqa: E731
        hd2, hd3 = co.sweep("k", 1.0, [1.0, 2.0], evaluate)
        assert np.array_equal(hd2, [2.0, 4.0])
        assert np.array_equal(hd3, [3.0, 6.0])
        co.sweep("k", 1.0, [2.0], evaluate)
        stats = co.stats()
        assert stats["flights"] == 2
        assert stats["coalesced"] == 0

    def test_concurrent_sweeps_merge_into_one_flight(self):
        co = SweepCoalescer()
        started = threading.Event()
        release = threading.Event()

        def slow_evaluate(union):
            started.set()
            assert release.wait(10)
            return union * 2, union * 3

        evaluate = lambda union: (union * 2, union * 3)  # noqa: E731
        results = {}

        def request(name, omegas, fn):
            results[name] = co.sweep("k", 1.0, omegas, fn)

        leader = threading.Thread(
            target=request, args=("t1", [1.0, 2.0], slow_evaluate)
        )
        leader.start()
        assert started.wait(10)
        followers = [
            threading.Thread(
                target=request, args=(name, omegas, evaluate)
            )
            for name, omegas in (("t2", [2.0, 3.0]), ("t3", [3.0, 4.0]))
        ]
        for thread in followers:
            thread.start()
        # Wait until both followers are queued behind the in-progress
        # flight, then let the leader finish.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            with co._lock:
                if len(co._states[("k", 1.0)].pending) == 2:
                    break
            time.sleep(0.005)
        release.set()
        leader.join(10)
        for thread in followers:
            thread.join(10)
        stats = co.stats()
        assert stats["requests"] == 3
        assert stats["flights"] == 2  # leader's own + one merged flight
        assert stats["coalesced"] == 1
        assert stats["points_solved"] == 2 + 3  # {1,2} then {2,3,4}
        assert np.array_equal(results["t2"][0], [4.0, 6.0])
        assert np.array_equal(results["t3"][0], [6.0, 8.0])
        assert np.array_equal(results["t3"][1], [9.0, 12.0])

    def test_evaluation_error_propagates_to_all_waiters(self):
        co = SweepCoalescer()

        def boom(union):
            raise ValidationError("flight failed")

        with pytest.raises(ValidationError, match="flight failed"):
            co.sweep("k", 1.0, [1.0], boom)


# ---------------------------------------------------------------------------
# service tiers + bit-identity
# ---------------------------------------------------------------------------

class TestServiceTiers:
    def test_cold_then_hot_in_one_process(self, tmp_path):
        service = ReproService(store=tmp_path, hot_capacity=4)
        payload = {"spec": ladder_spec(), "reduce": REDUCE}
        first = service.handle(ReduceRequest.from_payload(payload))
        second = service.handle(ReduceRequest.from_payload(payload))
        assert first.served_from == "cold"
        assert second.served_from == "hot"
        assert first.artifact_key == second.artifact_key
        assert second.result.store_hit is True

    def test_disk_tier_in_fresh_service(self, tmp_path):
        payload = {"spec": ladder_spec(), "reduce": REDUCE}
        ReproService(store=tmp_path, hot_capacity=4).handle(
            ReduceRequest.from_payload(payload)
        )
        fresh = ReproService(store=tmp_path, hot_capacity=4)
        outcome = fresh.handle(ReduceRequest.from_payload(payload))
        assert outcome.served_from == "disk"
        assert outcome.result.store_hit is True

    def test_no_store_still_serves_hot(self):
        service = ReproService(store=None, hot_capacity=4)
        payload = {"spec": ladder_spec(), "reduce": REDUCE}
        assert service.handle(
            ReduceRequest.from_payload(payload)
        ).served_from == "cold"
        assert service.handle(
            ReduceRequest.from_payload(payload)
        ).served_from == "hot"

    def test_sweep_bit_identical_to_run_pipeline(self, tmp_path):
        spec = ladder_spec()
        service = ReproService(store=tmp_path / "a", hot_capacity=4)
        payload = {"spec": spec, "reduce": REDUCE, "sweep": SWEEP}
        served = service.handle(SweepRequest.from_payload(payload))
        # Serve the same sweep again hot+coalesced: must not drift.
        served_hot = service.handle(SweepRequest.from_payload(payload))
        reference = run_pipeline(
            spec, reduce=ReductionJob.coerce(REDUCE), sweep=SWEEP,
            store=tmp_path / "b",
        )
        for outcome in (served, served_hot):
            assert np.array_equal(
                outcome.result.sweep["hd2"], reference.sweep["hd2"]
            )
            assert np.array_equal(
                outcome.result.sweep["hd3"], reference.sweep["hd3"]
            )
        assert served_hot.served_from == "hot"

    def test_concurrent_sweeps_bit_identical_and_coalesced(self, tmp_path):
        spec = ladder_spec()
        service = ReproService(store=tmp_path, hot_capacity=4)
        # Prime the ROM so every concurrent request is hot.
        service.handle(ReduceRequest.from_payload(
            {"spec": spec, "reduce": REDUCE}
        ))
        grids = [
            np.linspace(0.05, 0.3, 5),
            np.linspace(0.05, 0.3, 5),   # identical grid
            np.linspace(0.1, 0.4, 4),    # overlapping grid
        ]
        outcomes = [None] * len(grids)

        def worker(index, omegas):
            outcomes[index] = service.handle(SweepRequest.from_payload({
                "spec": spec, "reduce": REDUCE,
                "sweep": {"omegas": list(omegas)},
            }))

        threads = [
            threading.Thread(target=worker, args=(i, g))
            for i, g in enumerate(grids)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        for outcome, omegas in zip(outcomes, grids):
            solo = run_pipeline(
                spec, reduce=ReductionJob.coerce(REDUCE),
                sweep={"omegas": list(omegas)},
            )
            assert np.array_equal(
                outcome.result.sweep["hd2"], solo.sweep["hd2"]
            )
            assert np.array_equal(
                outcome.result.sweep["hd3"], solo.sweep["hd3"]
            )
        assert service.coalescer.stats()["requests"] == 3

    def test_fingerprint_computed_once_per_loaded_spec(self, tmp_path,
                                                       monkeypatch):
        calls = {"count": 0}
        real = fingerprint_system

        def counting(system):
            calls["count"] += 1
            return real(system)

        import repro.serve.service as service_mod
        monkeypatch.setattr(
            service_mod, "fingerprint_system", counting
        )
        service = ReproService(store=tmp_path, hot_capacity=4)
        payload = {"spec": ladder_spec(), "reduce": REDUCE}
        for _ in range(3):
            service.handle(ReduceRequest.from_payload(payload))
        assert calls["count"] == 1

    def test_info_and_simulate_roundtrip(self, tmp_path):
        service = ReproService(store=tmp_path, hot_capacity=4)
        info = service.handle(
            InfoRequest.from_payload({"spec": ladder_spec()})
        )
        assert info.report()["system"]["n_states"] == 12
        outcome = service.handle(SimulateRequest.from_payload({
            "spec": ladder_spec(), "reduce": REDUCE,
            "transient": {
                "source": {"kind": "sine", "amplitude": 0.05,
                           "frequency": 0.08},
                "t_end": 1.0, "dt": 0.05,
            },
        }))
        assert outcome.result.transient["steps"] == 21
        assert outcome.served_from == "cold"


# ---------------------------------------------------------------------------
# cooperative cancellation
# ---------------------------------------------------------------------------

class TestCancellation:
    def test_serial_executor_cancels_between_tasks(self):
        ran = []
        cancelled = {"flag": False}
        plan = SolvePlan("cancellable")
        for index in range(5):
            plan.add(ran.append, index)
        calls = {"count": 0}

        def cancel():
            calls["count"] += 1
            return cancelled["flag"] or calls["count"] > 2

        with pytest.raises(TaskCancelled):
            plan.execute(executor=SerialExecutor(), cancel=cancel)
        assert len(ran) < 5  # tail was shed

    def test_threadpool_executor_precancelled(self):
        pool = ThreadPoolExecutor(workers=2)
        try:
            with pytest.raises(TaskCancelled):
                pool.run([lambda: 1, lambda: 2], cancel=lambda: True)
        finally:
            pool.shutdown()

    def test_distortion_sweep_precancelled(self):
        system = quadratic_rc_ladder_netlist(n_nodes=8).compile().to_explicit()
        with pytest.raises(TaskCancelled):
            distortion_sweep(
                system, [0.1, 0.2], cancel=lambda: True
            )

    def test_cancel_none_is_bit_identical(self):
        system = quadratic_rc_ladder_netlist(n_nodes=8).compile()
        a = distortion_sweep(system.to_explicit(), [0.1, 0.2])
        b = distortion_sweep(
            system.to_explicit(), [0.1, 0.2], cancel=lambda: False
        )
        assert np.array_equal(a[1], b[1]) and np.array_equal(a[2], b[2])


# ---------------------------------------------------------------------------
# daemon: HTTP end to end, backpressure, deadlines
# ---------------------------------------------------------------------------

def _post(url, path, payload, timeout=120):
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.load(response)


def _get(url, path, timeout=30):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return response.status, json.load(response)


class _StallingService(ReproService):
    """Service whose handle() stalls (polling cancel) before serving."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.stall = 0.0

    def handle(self, request, cancel=None):
        deadline = time.monotonic() + self.stall
        while time.monotonic() < deadline:
            if cancel is not None and cancel():
                raise TaskCancelled("stalled request cancelled")
            time.sleep(0.01)
        return super().handle(request, cancel=cancel)


class _BlockingService(ReproService):
    """Service whose handle() blocks until released (queue-fill tests)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.release = threading.Event()
        self.entered = threading.Event()

    def handle(self, request, cancel=None):
        self.entered.set()
        assert self.release.wait(30)
        return super().handle(request, cancel=cancel)


class TestDaemon:
    def test_http_end_to_end_second_sweep_hot(self, tmp_path):
        service = ReproService(store=tmp_path, hot_capacity=4)
        daemon = ServeDaemon(service, port=0, queue_limit=4)
        url = daemon.start_background()
        try:
            status, health = _get(url, "/healthz")
            assert status == 200 and health["status"] == "ok"

            status, report = _post(url, "/v1/reduce", {
                "spec": ladder_spec(), "reduce": REDUCE,
            })
            assert status == 200
            assert report["reduction"]["served_from"] == "cold"

            sweep_payload = {
                "spec": ladder_spec(), "reduce": REDUCE, "sweep": SWEEP,
            }
            _, first = _post(url, "/v1/sweep", sweep_payload)
            _, second = _post(url, "/v1/sweep", sweep_payload)
            assert first["reduction"]["served_from"] == "hot"
            assert second["reduction"]["served_from"] == "hot"
            assert second["sweep"]["hd2"] == first["sweep"]["hd2"]

            # Served numbers match the one-shot pipeline bit for bit
            # (through JSON, which round-trips IEEE doubles exactly).
            reference = run_pipeline(
                ladder_spec(), reduce=ReductionJob.coerce(REDUCE),
                sweep=SWEEP,
            )
            assert second["sweep"]["hd2"] == list(reference.sweep["hd2"])
            assert second["sweep"]["hd3"] == list(reference.sweep["hd3"])

            status, metrics = _get(url, "/metrics")
            assert status == 200
            assert metrics["metrics"]["tiers"]["hot"] >= 2
            assert metrics["queue"]["limit"] == 4
            assert metrics["hot_cache"]["entries"] == 1
        finally:
            daemon.stop_background()

    def test_validation_errors_are_400(self, tmp_path):
        daemon = ServeDaemon(
            ReproService(store=tmp_path), port=0, queue_limit=4
        )
        url = daemon.start_background()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(url, "/v1/reduce", {"spec": ladder_spec()})
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(url, "/v1/nope", {})
            assert err.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(url, "/v1/reduce")  # GET on a POST verb
            assert err.value.code == 405
        finally:
            daemon.stop_background()

    def test_full_queue_returns_429_not_hang(self):
        service = _BlockingService(store=None, hot_capacity=2)
        daemon = ServeDaemon(service, port=0, queue_limit=1)
        url = daemon.start_background()
        results = {}
        try:
            def occupant():
                results["first"] = _post(url, "/v1/info", {
                    "spec": ladder_spec(),
                })

            thread = threading.Thread(target=occupant)
            thread.start()
            assert service.entered.wait(30)
            start = time.monotonic()
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(url, "/v1/info", {"spec": ladder_spec()})
            elapsed = time.monotonic() - start
            assert err.value.code == 429
            assert err.value.headers["Retry-After"] == "1"
            assert elapsed < 10  # shed immediately, not queued
            body = json.loads(err.value.read().decode())
            assert "retry" in body["error"]

            service.release.set()
            thread.join(30)
            assert results["first"][0] == 200
            # The freed slot accepts work again.
            status, _report = _post(url, "/v1/info", {
                "spec": ladder_spec(),
            })
            assert status == 200
        finally:
            service.release.set()
            daemon.stop_background()

    def test_timeout_returns_504_without_poisoning_caches(self, tmp_path):
        service = _StallingService(store=tmp_path, hot_capacity=4)
        daemon = ServeDaemon(
            service, port=0, queue_limit=4, timeout=0.25
        )
        url = daemon.start_background()
        try:
            # Warm the ROM (fast path, well under the deadline).
            status, report = _post(url, "/v1/reduce", {
                "spec": ladder_spec(), "reduce": REDUCE,
            })
            assert status == 200

            service.stall = 30.0
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(url, "/v1/sweep", {
                    "spec": ladder_spec(), "reduce": REDUCE,
                    "sweep": SWEEP,
                })
            assert err.value.code == 504

            # The cancelled worker must release its slot and the shared
            # caches must be untouched: the same sweep now serves hot
            # with the exact one-shot numbers.
            service.stall = 0.0
            deadline = time.monotonic() + 30
            while daemon._inflight > 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            status, served = _post(url, "/v1/sweep", {
                "spec": ladder_spec(), "reduce": REDUCE, "sweep": SWEEP,
            })
            assert status == 200
            assert served["reduction"]["served_from"] == "hot"
            reference = run_pipeline(
                ladder_spec(), reduce=ReductionJob.coerce(REDUCE),
                sweep=SWEEP,
            )
            assert served["sweep"]["hd2"] == list(reference.sweep["hd2"])
            status, metrics = _get(url, "/metrics")
            assert metrics["metrics"]["timeouts"] >= 1
        finally:
            daemon.stop_background()


# ---------------------------------------------------------------------------
# concurrent store access (N readers + a writer on one key)
# ---------------------------------------------------------------------------

class TestConcurrentStoreAccess:
    def test_readers_never_see_torn_state_under_overwrite(self, tmp_path):
        system, reducer, artifact_a = build_artifact(n=8, orders=(2, 0, 0))
        _, _, artifact_b = build_artifact(n=8, orders=(3, 0, 0))
        writer_store = ModelStore(tmp_path)
        key = writer_store.key_for(system, reducer)
        writer_store.store(key, artifact_a)

        stop = threading.Event()
        failures = []
        reader_stores = [ModelStore(tmp_path) for _ in range(4)]

        def reader(store):
            while not stop.is_set():
                loaded = store.load(key)
                if loaded is None:
                    failures.append("load returned None mid-overwrite")
                    return
                if not loaded.verify():
                    failures.append("loaded artifact failed basis check")
                    return
                meta = store.read_meta(key)
                if meta is not None and "last_access_unix" not in meta:
                    failures.append("meta lost its last-access field")
                    return

        threads = [
            threading.Thread(target=reader, args=(store,))
            for store in reader_stores
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(15):
                writer_store.store(key, artifact_a)
                writer_store.store(key, artifact_b)
        finally:
            stop.set()
            for thread in threads:
                thread.join(30)
        assert failures == []
        # No spurious quarantines on any handle: every observed state
        # was a complete artifact.
        for store in reader_stores + [writer_store]:
            assert store.corrupt == 0
            assert store.stats()["quarantine_collisions"] == 0
        assert not list(tmp_path.rglob("*.corrupt*"))

    def test_hot_cache_basis_agreement_after_overwrite(self, tmp_path):
        system, reducer, artifact_a = build_artifact(n=8, orders=(2, 0, 0))
        _, _, artifact_b = build_artifact(n=8, orders=(3, 0, 0))
        store = ModelStore(tmp_path)
        key = store.key_for(system, reducer)
        store.store(key, artifact_a)
        cache = HotROMCache(capacity=2)
        cache.put(key, store.load(key))

        store.store(key, artifact_b)  # overwrite on disk
        # The hot entry stays self-consistent (its own basis verifies)…
        hot = cache.get(key)
        assert hot.artifact.verify()
        # …and re-admitting from disk replaces it with the new basis,
        # in agreement with the on-disk meta's recorded hash.
        cache.put(key, store.load(key))
        refreshed = cache.get(key).artifact
        assert refreshed.verify()
        meta = store.read_meta(key)
        assert (refreshed.provenance["basis_hash"]
                == meta["provenance"]["basis_hash"])

    def test_touch_updates_last_access_and_recency(self, tmp_path):
        system, reducer, artifact = build_artifact(n=8, orders=(2, 0, 0))
        _, reducer_b, artifact_b = (
            build_artifact(n=8, orders=(3, 0, 0))[0],
            AssociatedTransformMOR(orders=(3, 0, 0)),
            build_artifact(n=8, orders=(3, 0, 0))[2],
        )
        store = ModelStore(tmp_path)
        key_a = store.key_for(system, reducer)
        key_b = store.key_for(system, reducer_b)
        store.store(key_a, artifact)
        store.store(key_b, artifact_b)
        before = store.last_access(key_a)
        time.sleep(0.02)
        assert store.load(key_a) is not None
        assert store.touches == 1
        assert store.last_access(key_a) > before
        assert store.recent_keys() == [key_a, key_b]
        assert store.recent_keys(limit=1) == [key_a]
        # touch=False loads leave the recency untouched.
        stamp = store.last_access(key_a)
        assert store.load(key_a, touch=False) is not None
        assert store.last_access(key_a) == stamp


# ---------------------------------------------------------------------------
# metrics + stats line
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_latency_quantiles(self):
        metrics = ServeMetrics()
        for ms in range(1, 101):
            metrics.observe("sweep", ms / 1e3, tier="hot")
        snapshot = metrics.snapshot()
        assert snapshot["total"] == 100
        assert snapshot["tiers"]["hot"] == 100
        latency = snapshot["latency"]["sweep"]
        assert latency["p50_ms"] == pytest.approx(50.0)
        assert latency["p99_ms"] == pytest.approx(99.0)

    def test_format_stats_line_flattens(self):
        line = format_stats_line(
            "serve", {"requests": {"total": 3}, "p50_ms": 1.25,
                      "ok": True},
        )
        assert line == "serve requests.total=3 p50_ms=1.25 ok=true"
