"""Blockwise-streamed solver core: tile-boundary parity, capped-peak
builds at scale, and mid-tile SIGKILL resume.

The streaming refactor must be *invisible* numerically: with one block
covering all rows the arithmetic is the exact historical code path
(bit identity), and any moderate tiling only reorders summations
(<= 1e-10).  Degenerate one-row blocks stress every boundary at once
and are held to subspace agreement.  Peak memory must follow the
configured ``max_block``, not ``n`` — asserted with tracemalloc under
a poisoned ``toarray`` so no dense n x n fallback can sneak in.
"""

import os
import subprocess
import sys
import tracemalloc
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro import memory
from repro.checkpoint import JobState
from repro.circuits import quadratic_rc_ladder_netlist
from repro.mor.assoc import AssociatedTransformMOR
from repro.serialize import array_digest
from repro.testing import faults

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _clean_state():
    faults.configure(None)
    memory.configure(None)
    yield
    faults.configure(None)
    faults.reset()
    memory.configure(None)


def fresh_system(n=256):
    net = quadratic_rc_ladder_netlist(
        n, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=8
    )
    return net.compile(sparse=True)


def make_reducer():
    return AssociatedTransformMOR(orders=(3, 2, 1), strategy="decoupled")


def reduce_blocked(n, max_block):
    return make_reducer().reduce(fresh_system(n), max_block=max_block)


def subspace_gap(a, b):
    """Spectral distance between the column spaces of *a* and *b*."""
    qa = np.linalg.qr(a)[0]
    qb = np.linalg.qr(b)[0]
    return float(np.linalg.norm(qa @ (qa.T @ qb) - qb, 2))


class TestTileBoundaryParity:
    """n deliberately not divisible by most block sizes: the ragged
    final tile and every interior boundary must not perturb the basis
    beyond summation-order roundoff."""

    N = 256

    @pytest.fixture(scope="class")
    def unblocked(self):
        # Explicit max_block >= n pins the single-block (historical)
        # arithmetic even when the environment forces tiny blocks —
        # CI runs this suite under REPRO_MAX_BLOCK=7.
        rom = reduce_blocked(self.N, max_block=self.N)
        return np.array(rom.basis)

    @pytest.mark.parametrize("max_block", [64, 100, 129, 255])
    def test_moderate_blocks_match_to_1e10(self, unblocked, max_block):
        rom = reduce_blocked(self.N, max_block=max_block)
        dev = np.abs(np.asarray(rom.basis) - unblocked).max()
        assert dev <= 1e-10, f"max_block={max_block} deviates by {dev:.3e}"

    @pytest.mark.parametrize("max_block", [256, 257, 10_000])
    def test_whole_row_block_is_bit_identical(self, unblocked, max_block):
        rom = reduce_blocked(self.N, max_block=max_block)
        assert np.array_equal(np.asarray(rom.basis), unblocked)

    def test_one_row_blocks_span_the_same_subspace(self, unblocked):
        rom = reduce_blocked(self.N, max_block=1)
        assert subspace_gap(np.asarray(rom.basis), unblocked) <= 1e-6

    def test_env_override_matches_explicit(self, unblocked, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_BLOCK", "100")
        memory.configure(None)
        rom = make_reducer().reduce(fresh_system(self.N))
        dev = np.abs(np.asarray(rom.basis) - unblocked).max()
        assert dev <= 1e-10

    @pytest.mark.slow
    def test_acceptance_parity_n2048(self):
        cold = np.array(reduce_blocked(2048, max_block=2048).basis)
        rom = reduce_blocked(2048, max_block=500)
        dev = np.abs(np.asarray(rom.basis) - cold).max()
        assert dev <= 1e-10


class TestPeakMemoryFollowsMaxBlock:
    @pytest.mark.slow
    def test_blocked_build_caps_allocations_at_n4096(self, monkeypatch):
        """At n = 4096 the unstreamed build peaks near 122 MB of traced
        allocations and a single dense n x n intermediate alone would
        be 134 MB; the streamed build under a 512-row block sits near
        87 MB — irreducible O(n * r) basis tiles, the shift-cached
        sparse LUs, and the transient extended-Krylov workspace the
        tightened chain/Π residual targets (1e-13 / 1e-12, for
        warm-vs-cold parametric-corner parity) iterate through before
        truncation.  Cap it at 100 MB — between the two regimes — and
        forbid densifying any sparse operator to get there."""
        def boom(self, *args, **kwargs):
            raise AssertionError(
                f"sparse matrix {self.shape} was densified in the "
                "streamed build"
            )

        for cls in (sp.csr_matrix, sp.csc_matrix, sp.coo_matrix):
            monkeypatch.setattr(cls, "toarray", boom)
            monkeypatch.setattr(cls, "todense", boom)

        system = fresh_system(4096)
        tracemalloc.start()
        try:
            rom = make_reducer().reduce(system, max_block=512)
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        assert rom.basis.shape[0] == 4096
        assert peak <= 100 * 1024 * 1024, f"traced peak {peak / 1e6:.1f} MB"


class TestSigkillMidTile:
    def test_sigkill_after_tile_resumes_losing_at_most_one_tile(
            self, tmp_path):
        """SIGKILL right after the first durable tile append: the
        resumed build reloads that tile (recomputing at most the one
        in flight) and the final basis hashes identically."""
        ckdir = tmp_path / "ck"
        n = 24
        script = (
            "from repro.checkpoint import JobState\n"
            "from repro.circuits import quadratic_rc_ladder_netlist\n"
            "from repro.mor.assoc import AssociatedTransformMOR\n"
            f"net = quadratic_rc_ladder_netlist({n}, r=10.0, g_leak=1.0,"
            " g_quad=0.5, quad_nodes=4)\n"
            "mor = AssociatedTransformMOR(orders=(3, 2, 1),"
            " strategy='decoupled')\n"
            f"mor.reduce(net.compile(sparse=True),"
            f" checkpoint=JobState({str(ckdir)!r}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC
        env["REPRO_FAULT"] = "checkpoint.after_tile:1:kill"
        result = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True,
        )
        assert result.returncode == -9, result.stderr

        net = quadratic_rc_ladder_netlist(
            n, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=4
        )
        cold = make_reducer().reduce(net.compile(sparse=True))
        cold_digest = array_digest(cold.basis)

        resumed = JobState(ckdir)
        assert resumed.has_resumable_tiles()
        net = quadratic_rc_ladder_netlist(
            n, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=4
        )
        rom = make_reducer().reduce(
            net.compile(sparse=True), checkpoint=resumed
        )
        assert array_digest(rom.basis) == cold_digest
        assert resumed.tiles_loaded == 1
        info = rom.details["checkpoint"]
        assert info["tiles_loaded"] == 1

    def test_kill_before_tile_write_falls_back_to_stage_resume(
            self, tmp_path):
        """Dying before the payload lands leaves no readable tile: the
        torn entry must be invisible and the stage track still resume
        bit-identically."""
        ckdir = tmp_path / "ck"
        faults.configure("checkpoint.before_tile:1:raise")
        with pytest.raises(Exception):
            make_reducer().reduce(
                fresh_system(24), checkpoint=JobState(ckdir)
            )
        faults.configure(None)
        cold_digest = array_digest(make_reducer().reduce(
            fresh_system(24)
        ).basis)
        resumed = JobState(ckdir)
        assert not resumed.has_resumable_tiles()
        rom = make_reducer().reduce(fresh_system(24), checkpoint=resumed)
        assert array_digest(rom.basis) == cold_digest
