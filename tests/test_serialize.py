"""Serialization round-trips: payload codec, systems, ROMs.

The acceptance bar for the artifact layer is *fidelity*: a system or
ROM that goes dense↔disk↔dense or CSR↔disk↔CSR must answer simulation
and distortion queries identically (≤ 1e-12) after reload, sparse
storage must stay sparse (enforced with a poisoned ``toarray``), and
wrong-class / corrupt payloads must fail loudly.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.distortion import distortion_sweep
from repro.circuits.examples import quadratic_rc_ladder_netlist
from repro.errors import ValidationError
from repro.mor import AssociatedTransformMOR, ReducedOrderModel
from repro.mor.krylov import reduce_lti
from repro.serialize import (
    array_digest,
    json_safe,
    load_payload,
    save_payload,
)
from repro.simulation import simulate, step_source
from repro.systems import (
    CubicODE,
    PolynomialODE,
    QLDAE,
    StateSpace,
    system_from_dict,
)


def forbid_densify(monkeypatch):
    """Poison sparse→dense conversion (mirrors test_sparse_path)."""

    def boom(self, *args, **kwargs):
        raise AssertionError(
            f"sparse matrix {self.shape} was densified on the fast path"
        )

    for cls in (sp.csr_matrix, sp.csc_matrix, sp.coo_matrix):
        monkeypatch.setattr(cls, "toarray", boom)
        monkeypatch.setattr(cls, "todense", boom)


class TestPayloadCodec:
    def test_scalar_and_structure_round_trip(self, tmp_path):
        tree = {
            "none": None,
            "flag": True,
            "count": 3,
            "x": 1.5,
            "z": 1.0 + 2.0j,
            "label": "hello",
            "nested": {"list": [1, "two", {"deep": 3.0}]},
        }
        path = tmp_path / "payload.npz"
        save_payload(path, tree)
        back = load_payload(path)
        assert back == tree

    def test_array_and_csr_round_trip(self, tmp_path):
        rng = np.random.default_rng(7)
        dense = rng.standard_normal((4, 6))
        cplx = rng.standard_normal(5) + 1j * rng.standard_normal(5)
        csr = sp.random(8, 8, density=0.3, random_state=3, format="csr")
        path = tmp_path / "payload.npz"
        save_payload(path, {"dense": dense, "cplx": cplx, "csr": csr})
        back = load_payload(path)
        assert np.array_equal(back["dense"], dense)
        assert np.array_equal(back["cplx"], cplx)
        assert sp.issparse(back["csr"])
        assert (back["csr"] != csr).nnz == 0

    def test_tuples_normalize_to_lists(self, tmp_path):
        path = tmp_path / "payload.npz"
        save_payload(path, {"orders": (6, 3, 0)})
        assert load_payload(path)["orders"] == [6, 3, 0]

    def test_unserializable_object_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            save_payload(tmp_path / "bad.npz", {"obj": object()})

    def test_reserved_key_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            save_payload(tmp_path / "bad.npz", {"__ndarray__": 1})

    def test_non_string_key_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            save_payload(tmp_path / "bad.npz", {3: "x"})

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "payload.npz"
        save_payload(path, {"x": 1.0})
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(Exception):
            load_payload(path)

    def test_atomic_write_leaves_no_temp_droppings(self, tmp_path):
        path = tmp_path / "payload.npz"
        save_payload(path, {"x": np.arange(5)})
        save_payload(path, {"x": np.arange(6)})  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["payload.npz"]

    def test_json_safe_degrades_unknown_to_str(self):
        out = json_safe({"a": np.float64(2.0), "b": object(),
                         "c": (1, np.int64(2)), "z": 1j})
        assert out["a"] == 2.0 and isinstance(out["a"], float)
        assert isinstance(out["b"], str)
        assert out["c"] == [1, 2]
        assert out["z"] == 1j

    def test_array_digest_distinguishes_pattern_and_data(self):
        a = sp.csr_matrix(np.diag([1.0, 2.0, 0.0]))
        b = sp.csr_matrix(np.diag([1.0, 0.0, 2.0]))  # same data, moved
        c = sp.csr_matrix(np.diag([1.0, 3.0, 0.0]))  # same pattern
        assert array_digest(a) != array_digest(b)
        assert array_digest(a) != array_digest(c)
        assert array_digest(a) == array_digest(a.copy())


class TestStateSpaceRoundTrip:
    def test_dense(self, tmp_path):
        rng = np.random.default_rng(11)
        ss = StateSpace(
            -np.eye(4) + 0.2 * rng.standard_normal((4, 4)),
            rng.standard_normal((4, 2)),
            rng.standard_normal((1, 4)),
            rng.standard_normal((1, 2)),
        )
        path = tmp_path / "ss.npz"
        ss.save(path)
        back = StateSpace.load(path)
        for field in ("a", "b", "c", "d"):
            assert np.array_equal(getattr(back, field), getattr(ss, field))
        s = 0.3 + 1.1j
        assert np.allclose(back.transfer(s), ss.transfer(s), atol=1e-14)

    def test_sparse_a_stays_sparse(self, tmp_path):
        a = sp.csr_matrix(np.diag([-1.0, -2.0, -3.0]))
        ss = StateSpace(a, np.ones(3))
        path = tmp_path / "ss.npz"
        ss.save(path)
        back = StateSpace.load(path)
        assert sp.issparse(back.a)
        assert (back.a != a).nnz == 0

    def test_wrong_class_payload_rejected(self, tmp_path):
        path = tmp_path / "sys.npz"
        QLDAE(-np.eye(2), np.ones(2)).save(path)
        with pytest.raises(ValidationError):
            StateSpace.load(path)


class TestPolynomialRoundTrip:
    def test_dense_qldae_bitwise(self, tmp_path, rng):
        n = 6
        g1 = -1.5 * np.eye(n) + 0.2 * rng.standard_normal((n, n))
        g2 = 0.2 * rng.standard_normal((n, n * n))
        d1 = 0.25 * rng.standard_normal((n, n))
        mass = np.eye(n) + 0.1 * rng.standard_normal((n, n))
        system = QLDAE(g1, rng.standard_normal(n), g2=g2, d1=d1,
                       mass=mass, output=np.eye(n)[0], name="bit")
        path = tmp_path / "sys.npz"
        system.save(path)
        back = PolynomialODE.load(path)
        assert type(back) is QLDAE
        assert back.name == "bit"
        assert np.array_equal(back.g1, system.g1)
        assert np.array_equal(back.mass, system.mass)
        assert np.array_equal(back.b, system.b)
        assert np.array_equal(back.output, system.output)
        assert (back.g2 != system.g2).nnz == 0
        assert np.array_equal(back.d1[0], system.d1[0])

    def test_cubic_round_trip(self, tmp_path, small_cubic):
        path = tmp_path / "cubic.npz"
        small_cubic.save(path)
        back = PolynomialODE.load(path)
        assert type(back) is CubicODE
        assert (back.g3 != small_cubic.g3).nnz == 0

    def test_class_mismatch_guard(self, tmp_path, small_qldae):
        path = tmp_path / "sys.npz"
        small_qldae.save(path)
        with pytest.raises(ValidationError):
            CubicODE.load(path)
        # the base class accepts any member of the hierarchy
        assert type(PolynomialODE.load(path)) is QLDAE

    def test_system_from_dict_dispatch(self, small_qldae, small_cubic):
        assert type(system_from_dict(small_qldae.to_dict())) is QLDAE
        assert type(system_from_dict(small_cubic.to_dict())) is CubicODE
        ss = StateSpace(-np.eye(2), np.ones(2))
        assert type(system_from_dict(ss.to_dict())) is StateSpace
        with pytest.raises(ValidationError):
            system_from_dict({"__class__": "Mystery"})

    def test_dense_disk_dense_simulate_parity(self, tmp_path):
        system = quadratic_rc_ladder_netlist(30, c=0.5).compile(sparse=False)
        path = tmp_path / "sys.npz"
        system.save(path)
        back = PolynomialODE.load(path)
        u = step_source(0.2)
        ref = simulate(system, u, t_end=2.0, dt=0.02)
        got = simulate(back, u, t_end=2.0, dt=0.02)
        assert np.abs(got.states - ref.states).max() <= 1e-12

    def test_sparse_mass_round_trips_sparse(self, tmp_path):
        system = quadratic_rc_ladder_netlist(64, c=0.5).compile(sparse=True)
        path = tmp_path / "sys.npz"
        system.save(path)
        back = PolynomialODE.load(path)
        assert back.is_sparse
        assert sp.issparse(back.mass)
        assert (back.mass != system.mass).nnz == 0
        assert (back.g1 != system.g1).nnz == 0

    def test_csr_disk_csr_stays_sparse_and_matches(
        self, tmp_path, monkeypatch
    ):
        # Unit capacitors: identity mass is dropped at assembly, so the
        # whole save → load → sweep cycle runs on the matrix-free fast
        # path (to_explicit is the identity) — poisoning toarray proves
        # no step densifies.
        system = quadratic_rc_ladder_netlist(64).compile(sparse=True)
        assert system.mass is None
        path = tmp_path / "sys.npz"
        omegas = np.array([0.1, 0.3])
        forbid_densify(monkeypatch)
        system.save(path)  # saving must not densify either
        back = PolynomialODE.load(path)
        assert back.is_sparse
        _, hd2_ref, hd3_ref = distortion_sweep(
            system.to_explicit(), omegas, amplitude=0.1
        )
        _, hd2, hd3 = distortion_sweep(
            back.to_explicit(), omegas, amplitude=0.1
        )
        assert np.abs(hd2 - hd2_ref).max() <= 1e-12
        assert np.abs(hd3 - hd3_ref).max() <= 1e-12


class TestRomRoundTrip:
    def test_polynomial_rom(self, tmp_path):
        system = quadratic_rc_ladder_netlist(30).compile()
        rom = AssociatedTransformMOR(orders=(5, 2, 0)).reduce(system)
        path = tmp_path / "rom.npz"
        rom.save(path)
        back = ReducedOrderModel.load(path)
        assert np.array_equal(back.basis, rom.basis)
        assert back.method == rom.method
        assert back.orders == rom.orders
        assert back.expansion_points == rom.expansion_points
        assert back.build_time == rom.build_time
        assert back.details["deflated_to"] == rom.details["deflated_to"]
        u = step_source(0.2)
        ref = simulate(rom.system, u, t_end=2.0, dt=0.02)
        got = simulate(back.system, u, t_end=2.0, dt=0.02)
        assert np.abs(got.states - ref.states).max() <= 1e-12

    def test_lti_rom(self, tmp_path):
        rng = np.random.default_rng(5)
        ss = StateSpace(
            -2.0 * np.eye(8) + 0.3 * rng.standard_normal((8, 8)),
            rng.standard_normal(8),
        )
        rom = reduce_lti(ss, count=3)
        path = tmp_path / "rom.npz"
        rom.save(path)
        back = ReducedOrderModel.load(path)
        assert isinstance(back.system, StateSpace)
        assert np.array_equal(back.basis, rom.basis)
        s = 0.2 + 0.7j
        assert np.allclose(
            back.system.transfer(s), rom.system.transfer(s), atol=1e-14
        )
