"""Tests for linear Krylov MOR and balanced truncation substrates."""

import numpy as np
import pytest

from repro.errors import SystemStructureError, ValidationError
from repro.mor import balanced_truncation, krylov_basis, reduce_lti
from repro.systems import StateSpace


@pytest.fixture
def rng():
    return np.random.default_rng(141)


@pytest.fixture
def stable_ss(rng):
    n = 12
    a = -1.0 * np.eye(n) + 0.25 * rng.standard_normal((n, n))
    b = rng.standard_normal(n)
    c = rng.standard_normal(n)
    return StateSpace(a, b, c)


class TestKrylovBasis:
    def test_orthonormal(self, stable_ss):
        v = krylov_basis(stable_ss.a, stable_ss.b, 4)
        assert np.allclose(v.T @ v, np.eye(v.shape[1]), atol=1e-12)

    def test_spans_shift_invert_chain(self, stable_ss):
        v = krylov_basis(stable_ss.a, stable_ss.b, 3, s0=0.5)
        shifted = stable_ss.a - 0.5 * np.eye(12)
        chain = np.linalg.solve(shifted, stable_ss.b)
        for _ in range(2):
            proj = v @ (v.T @ chain)
            assert np.allclose(proj, chain, atol=1e-8)
            chain = np.linalg.solve(shifted, chain)

    def test_complex_point_gives_complex_pair(self, stable_ss):
        v = krylov_basis(stable_ss.a, stable_ss.b, 2, s0=1.0j)
        # real basis with real+imag directions
        assert v.dtype.kind == "f"
        assert v.shape[1] == 4

    def test_nonsquare_rejected(self, rng):
        with pytest.raises(ValidationError):
            krylov_basis(rng.standard_normal((3, 4)), np.ones(3), 2)


class TestReduceLTI:
    def test_moment_matching(self, stable_ss):
        rom = reduce_lti(stable_ss, 4)
        m_full = stable_ss.moments(4)
        m_rom = rom.system.moments(4)
        for a, b in zip(m_full, m_rom):
            assert np.allclose(a, b, rtol=1e-5, atol=1e-10)

    def test_multipoint(self, stable_ss):
        rom = reduce_lti(stable_ss, 2, s0=[0.0, 1.0])
        for s0 in (0.0, 1.0):
            f = stable_ss.transfer(s0 + 1e-9)
            r = rom.system.transfer(s0 + 1e-9)
            assert np.allclose(f, r, rtol=1e-6)

    def test_requires_statespace(self):
        with pytest.raises(ValidationError):
            reduce_lti(np.eye(3), 2)


class TestBalancedTruncation:
    def test_hsv_error_bound(self, stable_ss):
        """Classic BT bound: |H − Hr|_∞ <= 2 Σ_{k>r} σ_k (checked at a
        few frequency points)."""
        rom = balanced_truncation(stable_ss, order=4)
        hsv = rom.details["hankel_singular_values"]
        bound = 2.0 * hsv[4:].sum()
        for w in (0.0, 0.3, 1.0, 3.0):
            f = stable_ss.transfer(1j * w)[0, 0]
            r = rom.system.transfer(1j * w)[0, 0]
            assert abs(f - r) <= bound * (1 + 1e-8) + 1e-12

    def test_tol_selects_order(self, stable_ss):
        rom = balanced_truncation(stable_ss, tol=1e-6)
        hsv = rom.details["hankel_singular_values"]
        assert rom.system.n_states == int(np.sum(hsv > 1e-6 * hsv[0]))

    def test_requires_exactly_one_criterion(self, stable_ss):
        with pytest.raises(ValidationError):
            balanced_truncation(stable_ss)
        with pytest.raises(ValidationError):
            balanced_truncation(stable_ss, order=2, tol=1e-3)

    def test_unstable_rejected(self):
        ss = StateSpace(np.eye(2), np.ones(2), np.ones(2))
        with pytest.raises(SystemStructureError):
            balanced_truncation(ss, order=1)

    def test_reduced_is_balanced(self, stable_ss):
        """Gramians of the reduced system are (approximately) equal and
        diagonal with the leading HSVs."""
        rom = balanced_truncation(stable_ss, order=3)
        red = rom.system
        p = red.controllability_gramian()
        q = red.observability_gramian()
        hsv = rom.details["hankel_singular_values"][:3]
        assert np.allclose(np.diag(p), hsv, rtol=1e-6)
        assert np.allclose(np.diag(q), hsv, rtol=1e-6)
