"""Unit tests for the multivariate Volterra transfer functions."""

import numpy as np
import pytest

from repro.systems import QLDAE
from repro.volterra import (
    input_permutation,
    volterra_h1,
    volterra_h2,
    volterra_h3,
)


@pytest.fixture
def rng():
    return np.random.default_rng(81)


class TestInputPermutation:
    def test_swaps_kron_factors(self, rng):
        a = rng.standard_normal(3)
        b = rng.standard_normal(3)
        p = input_permutation(3, (1, 0))
        assert np.allclose(p @ np.kron(a, b), np.kron(b, a))

    def test_three_way(self, rng):
        vecs = [rng.standard_normal(2) for _ in range(3)]
        perm = (2, 0, 1)
        p = input_permutation(2, perm)
        lhs = p @ np.kron(vecs[0], np.kron(vecs[1], vecs[2]))
        rhs = np.kron(vecs[2], np.kron(vecs[0], vecs[1]))
        assert np.allclose(lhs, rhs)

    def test_identity_permutation(self):
        p = input_permutation(3, (0, 1))
        assert np.allclose(p.toarray(), np.eye(9))


class TestH1:
    def test_resolvent(self, small_qldae):
        s = 0.5 + 1.2j
        h1 = volterra_h1(small_qldae, s)
        n = small_qldae.n_states
        expected = np.linalg.solve(
            s * np.eye(n) - small_qldae.g1, small_qldae.b
        )
        assert np.allclose(h1, expected)


class TestH2Symmetry:
    def test_siso_symmetric(self, small_qldae):
        s1, s2 = 0.4 + 0.3j, 1.1 - 0.2j
        h_a = volterra_h2(small_qldae, s1, s2)
        h_b = volterra_h2(small_qldae, s2, s1)
        assert np.allclose(h_a, h_b)

    def test_mimo_joint_symmetry(self, miso_qldae):
        """H2(s2, s1) with swapped input slots equals H2(s1, s2)."""
        s1, s2 = 0.6, 1.3 + 0.5j
        m = miso_qldae.n_inputs
        swap = input_permutation(m, (1, 0)).toarray()
        h_a = volterra_h2(miso_qldae, s1, s2)
        h_b = volterra_h2(miso_qldae, s2, s1) @ swap
        assert np.allclose(h_a, h_b)

    def test_paper_formula_siso(self, small_qldae):
        """Direct check against eq. (14b)."""
        s1, s2 = 0.7, 1.4
        n = small_qldae.n_states
        h1a = volterra_h1(small_qldae, s1)[:, 0]
        h1b = volterra_h1(small_qldae, s2)[:, 0]
        g2 = small_qldae.g2.toarray()
        d1 = small_qldae.d1[0]
        inner = g2 @ (np.kron(h1a, h1b) + np.kron(h1b, h1a)) + d1 @ (
            h1a + h1b
        )
        expected = 0.5 * np.linalg.solve(
            (s1 + s2) * np.eye(n) - small_qldae.g1, inner
        )
        assert np.allclose(
            volterra_h2(small_qldae, s1, s2)[:, 0], expected
        )

    def test_zero_without_nonlinearity(self):
        sys = QLDAE(-np.eye(3), np.ones(3))
        assert np.allclose(volterra_h2(sys, 0.5, 0.8), 0.0)


class TestH3Symmetry:
    @pytest.mark.parametrize("perm", [(1, 0, 2), (2, 1, 0), (1, 2, 0)])
    def test_siso_permutation_invariance(self, small_qldae, perm):
        s = (0.3, 0.9, 1.7)
        h_ref = volterra_h3(small_qldae, *s)
        permuted = volterra_h3(
            small_qldae, s[perm[0]], s[perm[1]], s[perm[2]]
        )
        assert np.allclose(h_ref, permuted, atol=1e-12)

    def test_mimo_joint_symmetry(self, miso_qldae):
        s = (0.4, 0.9, 1.5)
        m = miso_qldae.n_inputs
        perm = (2, 0, 1)
        p = input_permutation(m, perm).toarray()
        h_ref = volterra_h3(miso_qldae, *s)
        h_perm = volterra_h3(
            miso_qldae, s[perm[0]], s[perm[1]], s[perm[2]]
        )
        assert np.allclose(h_ref, h_perm @ p, atol=1e-12)

    def test_cubic_only_formula(self, small_cubic):
        """Pure cubic: H3 = (1/6)(ΣsI − G1)^{-1} G3 Σ_perms H1⊗H1⊗H1."""
        import itertools

        s = (0.5, 1.0, 1.5)
        n = small_cubic.n_states
        h1 = {si: volterra_h1(small_cubic, si)[:, 0] for si in s}
        acc = np.zeros(n**3, dtype=complex)
        for perm in itertools.permutations(s):
            acc += np.kron(h1[perm[0]], np.kron(h1[perm[1]], h1[perm[2]]))
        expected = np.linalg.solve(
            sum(s) * np.eye(n) - small_cubic.g1,
            small_cubic.g3 @ acc,
        ) / 6.0
        assert np.allclose(
            volterra_h3(small_cubic, *s)[:, 0], expected
        )

    def test_h2_zero_for_cubic(self, small_cubic):
        assert np.allclose(volterra_h2(small_cubic, 0.3, 0.8), 0.0)


class TestProbingConsistency:
    def test_two_tone_steady_state(self, small_qldae_no_d1):
        """Drive with u = eps(e^{jw1 t} + e^{jw2 t}); the coefficient of
        e^{j(w1+w2)t} in the quadratic variational response must equal
        2 H2(jw1, jw2) (growing-exponential identity)."""
        sys = small_qldae_no_d1
        w1, w2 = 0.7, 1.9
        n = sys.n_states
        h2 = volterra_h2(sys, 1j * w1, 1j * w2)[:, 0]
        # Analytic steady-state of x2' = G1 x2 + G2 (x1⊗x1):
        # x1 = H1(jw1)e^{jw1 t} + H1(jw2)e^{jw2 t}; pick the (w1+w2) term.
        h1a = volterra_h1(sys, 1j * w1)[:, 0]
        h1b = volterra_h1(sys, 1j * w2)[:, 0]
        forcing = sys.g2 @ (np.kron(h1a, h1b) + np.kron(h1b, h1a))
        coeff = np.linalg.solve(
            1j * (w1 + w2) * np.eye(n) - sys.g1, forcing
        )
        assert np.allclose(coeff, 2 * h2)
