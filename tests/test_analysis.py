"""Tests for error metrics and text reporting."""

import numpy as np
import pytest

from repro.analysis import (
    format_table,
    max_relative_error,
    relative_error_trace,
    rms_error,
    series_summary,
    sparkline,
    speedup,
)
from repro.errors import ValidationError


class TestMetrics:
    def test_peak_normalization(self):
        ref = np.array([0.0, 2.0, -1.0])
        cand = np.array([0.0, 2.2, -1.0])
        trace = relative_error_trace(ref, cand)
        assert np.allclose(trace, [0.0, 0.1, 0.0])

    def test_pointwise_normalization(self):
        ref = np.array([1.0, 2.0])
        cand = np.array([1.1, 2.0])
        trace = relative_error_trace(ref, cand, normalization="pointwise")
        assert np.allclose(trace, [0.1, 0.0], atol=1e-9)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValidationError):
            relative_error_trace(np.zeros(3), np.ones(3))

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            relative_error_trace(np.ones(3), np.ones(4))

    def test_unknown_normalization(self):
        with pytest.raises(ValidationError):
            relative_error_trace(np.ones(2), np.ones(2), "nope")

    def test_max_relative_error(self):
        assert max_relative_error([1.0, 2.0], [1.0, 2.4]) == pytest.approx(
            0.2
        )

    def test_rms(self):
        assert rms_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_speedup(self):
        assert speedup(10.0, 3.9) == pytest.approx(0.61)
        with pytest.raises(ValidationError):
            speedup(0.0, 1.0)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 22]],
            title="Demo",
        )
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_cell_count_check(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_table_complex_cells(self):
        """Complex kernel values format like floats (4 sig digits per
        component), not as 17-digit ``str()`` blobs."""
        value = complex(0.123456789123456, -9.87654321e-5)
        table = format_table(["h2"], [[value]])
        cell = table.splitlines()[-1].strip()
        assert cell == "0.1235-9.877e-05j"
        assert str(value) not in table
        zero = format_table(["h2"], [[0j]]).splitlines()[-1].strip()
        assert zero == "0"
        npx = format_table(["h2"], [[np.complex128(1.5 + 2j)]])
        assert "1.5+2j" in npx

    def test_sparkline_width(self):
        line = sparkline(np.sin(np.linspace(0, 10, 500)), width=40)
        assert len(line) == 40

    def test_sparkline_constant(self):
        assert set(sparkline(np.ones(10))) == {" "}

    def test_sparkline_empty_rejected(self):
        with pytest.raises(ValidationError):
            sparkline([])

    def test_series_summary_contains_range(self):
        text = series_summary("demo", [0, 1, 2], [1.0, -2.0, 3.0])
        assert "demo" in text
        assert "min=-2" in text
        assert "max=3" in text
