"""Unit tests for the matrix-free lifted operators."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.linalg import (
    DenseOperator,
    KronSumOperator,
    QuadraticLiftedOperator,
    kron_sum_power,
    solve_left_kron_sum,
    solve_right_kron_sum,
)


@pytest.fixture
def rng():
    return np.random.default_rng(21)


@pytest.fixture
def g1(rng):
    return -1.4 * np.eye(5) + 0.3 * rng.standard_normal((5, 5))


@pytest.fixture
def g2(rng):
    return 0.25 * rng.standard_normal((5, 25))


class TestDenseOperator:
    def test_matvec_and_solves(self, rng):
        a = -np.eye(4) + 0.2 * rng.standard_normal((4, 4))
        op = DenseOperator(a)
        x = rng.standard_normal(4)
        assert np.allclose(op.matvec(x), a @ x)
        sol = op.solve_shifted(0.5, x)
        assert np.allclose((a + 0.5 * np.eye(4)) @ sol, x)
        sol_t = op.solve_shifted_transpose(0.5, x)
        assert np.allclose((a.T + 0.5 * np.eye(4)) @ sol_t, x)

    def test_lu_cache_reused(self, rng):
        a = -np.eye(3)
        op = DenseOperator(a)
        op.solve_shifted(0.5, np.ones(3))
        op.solve_shifted(0.5, np.zeros(3))
        assert len(op._lu_cache) == 1


class TestKronSumOperator:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matvec(self, g1, rng, k):
        op = KronSumOperator(g1, k)
        dense = kron_sum_power(g1, k)
        dense = dense.toarray() if hasattr(dense, "toarray") else dense
        x = rng.standard_normal(5**k)
        assert np.allclose(op.matvec(x), np.asarray(dense) @ x)

    def test_solve(self, g1, rng):
        op = KronSumOperator(g1, 2)
        x = rng.standard_normal(25)
        sol = op.solve_shifted(0.4, x)
        dense = op.dense() + 0.4 * np.eye(25)
        assert np.allclose(dense @ sol, x, atol=1e-9)

    def test_invalid_k(self, g1):
        with pytest.raises(ValidationError):
            KronSumOperator(g1, 4)


class TestQuadraticLiftedOperator:
    def test_dense_structure(self, g1, g2):
        op = QuadraticLiftedOperator(g1, g2)
        dense = op.dense()
        n = 5
        assert dense.shape == (30, 30)
        assert np.allclose(dense[:n, :n], g1)
        assert np.allclose(dense[:n, n:], g2)
        assert np.allclose(dense[n:, :n], 0.0)

    def test_matvec_matches_dense(self, g1, g2, rng):
        op = QuadraticLiftedOperator(g1, g2)
        x = rng.standard_normal(op.dim)
        assert np.allclose(op.matvec(x), op.dense() @ x)

    def test_solve_shifted(self, g1, g2, rng):
        op = QuadraticLiftedOperator(g1, g2)
        rhs = rng.standard_normal(op.dim)
        x = op.solve_shifted(0.6, rhs)
        assert np.allclose(
            (op.dense() + 0.6 * np.eye(op.dim)) @ x, rhs, atol=1e-9
        )

    def test_solve_shifted_transpose(self, g1, g2, rng):
        op = QuadraticLiftedOperator(g1, g2)
        rhs = rng.standard_normal(op.dim)
        x = op.solve_shifted_transpose(0.2, rhs)
        assert np.allclose(
            (op.dense().T + 0.2 * np.eye(op.dim)) @ x, rhs, atol=1e-9
        )

    def test_shape_validation(self, g1):
        with pytest.raises(ValidationError):
            QuadraticLiftedOperator(g1, np.zeros((5, 10)))

    def test_split_checks_length(self, g1, g2):
        op = QuadraticLiftedOperator(g1, g2)
        with pytest.raises(ValidationError):
            op.split(np.zeros(7))


class TestKronSumPairSolves:
    def test_left(self, rng):
        a = -np.eye(3) + 0.2 * rng.standard_normal((3, 3))
        b = -1.5 * np.eye(4) + 0.3 * rng.standard_normal((4, 4))
        big = np.kron(a, np.eye(4)) + np.kron(np.eye(3), b)
        v = rng.standard_normal(12)
        x = solve_left_kron_sum(a, DenseOperator(b), v, shift=0.25)
        assert np.allclose((big + 0.25 * np.eye(12)) @ x, v, atol=1e-10)

    def test_right(self, rng):
        a = -np.eye(3) + 0.2 * rng.standard_normal((3, 3))
        b = -1.5 * np.eye(4) + 0.3 * rng.standard_normal((4, 4))
        big = np.kron(b, np.eye(3)) + np.kron(np.eye(4), a)
        v = rng.standard_normal(12)
        x = solve_right_kron_sum(DenseOperator(b), a, v, shift=0.1)
        assert np.allclose((big + 0.1 * np.eye(12)) @ x, v, atol=1e-10)

    def test_left_with_lifted_inner_operator(self, g1, g2, rng):
        """The H3 configuration: A = G1 (small), B = Ã2 (lifted)."""
        inner = QuadraticLiftedOperator(g1, g2)
        a_small = -np.eye(2) + 0.1 * rng.standard_normal((2, 2))
        big = np.kron(a_small, np.eye(inner.dim)) + np.kron(
            np.eye(2), inner.dense()
        )
        v = rng.standard_normal(2 * inner.dim)
        x = solve_left_kron_sum(a_small, inner, v, shift=0.15)
        assert np.allclose(
            (big + 0.15 * np.eye(big.shape[0])) @ x, v, atol=1e-8
        )
