"""Tests for harmonic-distortion / intermodulation analysis."""

import numpy as np
import pytest

from repro.analysis import (
    distortion_sweep,
    single_tone_distortion,
    two_tone_intermodulation,
)
from repro.errors import SystemStructureError
from repro.mor import AssociatedTransformMOR
from repro.simulation import simulate, sine_source
from repro.systems import QLDAE


@pytest.fixture
def rng():
    return np.random.default_rng(181)


@pytest.fixture
def scalar_quadratic():
    """1-state system x' = −x + g2 x² + u with known closed forms.

    H1(s) = 1/(s+1); H2(s1,s2) = g2 H1(s1)H1(s2)/(s1+s2+1).
    """
    g2 = 0.3
    return (
        QLDAE(
            np.array([[-1.0]]),
            np.array([1.0]),
            g2=np.array([[g2]]),
            output=np.array([1.0]),
        ),
        g2,
    )


class TestSingleTone:
    def test_second_harmonic_closed_form(self, scalar_quadratic):
        sys, g2 = scalar_quadratic
        w = 0.7
        a = 0.2
        h1 = 1.0 / (1j * w + 1.0)
        h2 = g2 * h1 * h1 / (2j * w + 1.0) * 1.0
        metrics = single_tone_distortion(sys, w, a)
        assert np.isclose(metrics["fundamental"], a * abs(h1))
        assert np.isclose(metrics["second_harmonic"],
                          0.5 * a**2 * abs(h2))
        assert np.isclose(
            metrics["hd2"], 0.5 * a * abs(h2) / abs(h1)
        )

    def test_matches_transient_harmonics(self, scalar_quadratic):
        """The predicted 2nd harmonic equals the one extracted from a
        steady-state transient by single-bin DFT.

        The analysis window must hold an integer number of periods or
        fundamental leakage swamps the (tiny) harmonic bins; we use
        ω = π/4 (period 8) and the window [40, 80)."""
        sys, _ = scalar_quadratic
        w = np.pi / 4
        a = 0.05
        metrics = single_tone_distortion(sys, w, a)
        u = lambda t: a * np.cos(w * t)
        res = simulate(sys, u, 80.0, 0.005)
        tail = (res.times >= 40.0) & (res.times < 80.0)
        t = res.times[tail]
        y = res.output(0)[tail]

        def bin_mag(freq):
            phase = np.exp(-1j * freq * t)
            return 2 * abs(np.mean(y * phase))

        assert np.isclose(
            bin_mag(w), metrics["fundamental"], rtol=1e-2
        )
        assert np.isclose(
            bin_mag(2 * w), metrics["second_harmonic"], rtol=5e-2
        )

    def test_hd_scales_with_amplitude(self, scalar_quadratic):
        sys, _ = scalar_quadratic
        m1 = single_tone_distortion(sys, 0.5, 0.1)
        m2 = single_tone_distortion(sys, 0.5, 0.2)
        assert np.isclose(m2["hd2"], 2 * m1["hd2"])
        assert np.isclose(m2["hd3"], 4 * m1["hd3"])

    def test_requires_siso(self, miso_qldae):
        with pytest.raises(SystemStructureError):
            single_tone_distortion(miso_qldae, 0.5)


class TestTwoTone:
    def test_im2_closed_form(self, scalar_quadratic):
        sys, g2 = scalar_quadratic
        w1, w2 = 0.5, 0.8

        def h1(s):
            return 1.0 / (s + 1.0)

        h2_sum = g2 * h1(1j * w1) * h1(1j * w2) / (1j * (w1 + w2) + 1.0)
        metrics = two_tone_intermodulation(sys, w1, w2, a1=0.1, a2=0.2)
        assert np.isclose(metrics["im2_sum"], 0.1 * 0.2 * abs(h2_sum))

    def test_im3_present_for_quadratic_cascade(self, small_qldae_no_d1):
        """Quadratic systems still produce IM3 through H3 (cascaded H2)."""
        metrics = two_tone_intermodulation(
            small_qldae_no_d1, 0.4, 0.6, a1=0.1, a2=0.1
        )
        assert metrics["im3_2f1_f2"] > 0.0


class TestSweepAndROM:
    def test_sweep_shapes(self, scalar_quadratic):
        sys, _ = scalar_quadratic
        omegas, hd2, hd3 = distortion_sweep(
            sys, np.linspace(0.1, 2.0, 8), amplitude=0.1
        )
        assert omegas.shape == hd2.shape == hd3.shape == (8,)
        assert np.all(hd2 > 0)

    def test_rom_preserves_distortion(self, rng):
        """ROMs reproduce HD2 across the matched band.

        Nuance worth pinning down: NORM matches *multivariate* moments,
        so its ROM reproduces H2(jω, jω) (and hence HD2) to machine-ish
        accuracy near DC; the associated transform matches moments of
        the *diagonal* kernel's transform, a slightly different space,
        and lands within a few percent — consistent with the paper's
        "almost the same accuracy" transient observations."""
        from repro.mor import NORMReducer

        n = 12
        g1 = -1.2 * np.eye(n) + 0.25 * rng.standard_normal((n, n))
        g2 = 0.15 * rng.standard_normal((n, n * n))
        sys = QLDAE(
            g1, rng.standard_normal(n), g2=g2, output=np.eye(n)[0]
        )
        rom_a = AssociatedTransformMOR(orders=(6, 4, 0)).reduce(sys)
        rom_n = NORMReducer(orders=(6, 4, 0)).reduce(sys)
        for w in (0.05, 0.2):
            full_m = single_tone_distortion(sys, w, 0.1)
            m_a = single_tone_distortion(rom_a.system, w, 0.1)
            m_n = single_tone_distortion(rom_n.system, w, 0.1)
            assert np.isclose(full_m["hd2"], m_n["hd2"], rtol=1e-4)
            assert np.isclose(full_m["hd2"], m_a["hd2"], rtol=0.10)
