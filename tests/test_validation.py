"""Unit tests for the internal validation helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro._validation import (
    as_matrix,
    as_sparse,
    as_square_matrix,
    as_vector,
    check_nonnegative_int,
    check_positive_int,
    check_shape,
    is_sparse,
)
from repro.errors import ValidationError


class TestAsMatrix:
    def test_list_coerced(self):
        out = as_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_1d_rejected(self):
        with pytest.raises(ValidationError):
            as_matrix(np.ones(3))

    def test_sparse_densified_by_default(self):
        out = as_matrix(sp.eye(3))
        assert isinstance(out, np.ndarray)

    def test_sparse_kept_when_allowed(self):
        out = as_matrix(sp.eye(3), allow_sparse=True)
        assert sp.issparse(out)

    def test_object_dtype_rejected(self):
        with pytest.raises(ValidationError):
            as_matrix(np.array([["a", "b"], ["c", "d"]]))

    def test_square_check(self):
        with pytest.raises(ValidationError):
            as_square_matrix(np.ones((2, 3)))


class TestAsVector:
    def test_column_flattened(self):
        assert as_vector(np.ones((4, 1))).shape == (4,)

    def test_row_flattened(self):
        assert as_vector(np.ones((1, 4))).shape == (4,)

    def test_matrix_rejected(self):
        with pytest.raises(ValidationError):
            as_vector(np.ones((2, 3)))

    def test_int_promoted_to_float(self):
        assert as_vector([1, 2, 3]).dtype == np.float64


class TestIntChecks:
    def test_positive(self):
        assert check_positive_int(3) == 3
        with pytest.raises(ValidationError):
            check_positive_int(0)
        with pytest.raises(ValidationError):
            check_positive_int(2.5)
        with pytest.raises(ValidationError):
            check_positive_int(True)

    def test_nonnegative(self):
        assert check_nonnegative_int(0) == 0
        with pytest.raises(ValidationError):
            check_nonnegative_int(-1)


class TestShapes:
    def test_check_shape_wildcard(self):
        arr = np.ones((3, 5))
        assert check_shape(arr, (3, -1)) is arr
        with pytest.raises(ValidationError):
            check_shape(arr, (4, 5))
        with pytest.raises(ValidationError):
            check_shape(arr, (3, 5, 1))

    def test_is_sparse(self):
        assert is_sparse(sp.eye(2))
        assert not is_sparse(np.eye(2))

    def test_as_sparse_roundtrip(self):
        mat = as_sparse(np.eye(3))
        assert sp.issparse(mat)
        assert np.allclose(mat.toarray(), np.eye(3))
