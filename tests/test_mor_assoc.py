"""Tests for the proposed associated-transform NMOR reducer."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mor import AssociatedTransformMOR
from repro.simulation import simulate, sine_source, step_source
from repro.analysis import max_relative_error
from repro.systems import QLDAE


@pytest.fixture
def rng():
    return np.random.default_rng(121)


class TestConfiguration:
    def test_rejects_bad_orders(self):
        with pytest.raises(ValidationError):
            AssociatedTransformMOR(orders=(1, 2))
        with pytest.raises(ValidationError):
            AssociatedTransformMOR(orders=(0, 0, 0))
        with pytest.raises(ValidationError):
            AssociatedTransformMOR(orders=(1, -1, 0))

    def test_rejects_bad_strategy(self):
        with pytest.raises(ValidationError):
            AssociatedTransformMOR(strategy="magic")

    def test_rejects_empty_expansion_points(self):
        with pytest.raises(ValidationError):
            AssociatedTransformMOR(expansion_points=())


class TestReduction:
    def test_rom_order_is_sum_of_orders(self, small_qldae):
        rom = AssociatedTransformMOR(orders=(3, 2, 1)).reduce(small_qldae)
        # SISO: q1 + q2 + q3 chain vectors (possibly deflated)
        assert rom.order <= 6
        assert rom.order >= 4
        assert rom.basis.shape == (5, rom.order)
        assert np.allclose(
            rom.basis.T @ rom.basis, np.eye(rom.order), atol=1e-10
        )

    def test_h1_moments_matched(self, small_qldae):
        """The ROM's linear output transfer function matches q1 moments."""
        from repro.systems import StateSpace

        rom = AssociatedTransformMOR(orders=(3, 0, 0)).reduce(small_qldae)
        full_lin = StateSpace(
            small_qldae.g1, small_qldae.b, small_qldae.output
        )
        rom_lin = StateSpace(
            rom.system.g1, rom.system.b, rom.system.output
        )
        for a, b in zip(full_lin.moments(3), rom_lin.moments(3)):
            assert np.allclose(a, b, rtol=1e-6, atol=1e-12)

    def test_h2bar_moments_matched(self, small_qldae):
        """Output-side moments of A2(H2) match between full and ROM."""
        from repro.volterra import associated_h2

        rom = AssociatedTransformMOR(orders=(3, 3, 0)).reduce(small_qldae)
        r2_full = associated_h2(small_qldae)
        r2_rom = associated_h2(rom.system)
        s0 = 0.0
        # Compare Taylor values of the OUTPUT transfer function at s0:
        for s in (0.05, 0.1):
            full_val = small_qldae.output @ r2_full.eval(s)
            rom_val = rom.system.output @ r2_rom.eval(s)
            assert np.allclose(full_val, rom_val, rtol=1e-4, atol=1e-10)

    def test_transient_accuracy(self, small_qldae):
        u = sine_source(0.25, 0.4)
        full = simulate(small_qldae, u, 8.0, 0.01)
        rom = AssociatedTransformMOR(orders=(4, 3, 2)).reduce(small_qldae)
        red = simulate(rom.system, u, 8.0, 0.01)
        assert (
            max_relative_error(full.output(0), red.output(0)) < 1e-3
        )

    def test_decoupled_equals_coupled_subspace(self, small_qldae):
        cou = AssociatedTransformMOR(
            orders=(3, 2, 0), strategy="coupled"
        ).reduce(small_qldae)
        dec = AssociatedTransformMOR(
            orders=(3, 2, 0), strategy="decoupled"
        ).reduce(small_qldae)
        # Decoupled basis has (up to) one extra block but must contain
        # the coupled moment directions; compare subspace angles of the
        # shared span.
        q_dec = dec.basis
        proj = q_dec @ (q_dec.T @ cou.basis)
        assert np.abs(proj - cou.basis).max() < 1e-6

    def test_multipoint_expansion(self, small_qldae):
        rom = AssociatedTransformMOR(
            orders=(2, 1, 0), expansion_points=(0.0, 1.0j)
        ).reduce(small_qldae)
        u = sine_source(0.2, 0.5)
        full = simulate(small_qldae, u, 6.0, 0.01)
        red = simulate(rom.system, u, 6.0, 0.01)
        assert max_relative_error(full.output(0), red.output(0)) < 5e-3

    def test_cubic_system(self, small_cubic):
        rom = AssociatedTransformMOR(orders=(3, 0, 2)).reduce(small_cubic)
        u = step_source(0.4)
        full = simulate(small_cubic, u, 6.0, 0.01)
        red = simulate(rom.system, u, 6.0, 0.01)
        assert max_relative_error(full.output(0), red.output(0)) < 1e-2

    def test_miso_system(self, miso_qldae):
        rom = AssociatedTransformMOR(orders=(3, 2, 1)).reduce(miso_qldae)
        u = lambda t: np.array([0.2 * np.sin(0.5 * t), 0.1])
        full = simulate(miso_qldae, u, 6.0, 0.01)
        red = simulate(rom.system, u, 6.0, 0.01)
        assert max_relative_error(full.output(0), red.output(0)) < 1e-2

    def test_details_recorded(self, small_qldae):
        rom = AssociatedTransformMOR(orders=(2, 2, 1)).reduce(small_qldae)
        kinds = [blk[0] for blk in rom.details["blocks"]]
        assert kinds == ["H1", "H2", "H3"]
        assert rom.build_time is not None and rom.build_time > 0
        assert "associated-transform" in rom.method

    def test_linear_system_h1_only(self):
        sys = QLDAE(-np.eye(4), np.ones(4))
        rom = AssociatedTransformMOR(orders=(2, 2, 2)).reduce(sys)
        # H2/H3 are identically zero; only H1 vectors appear.
        kinds = [blk[0] for blk in rom.details["blocks"]]
        assert kinds == ["H1"]

    def test_rom_order_much_smaller_than_norm(self, rng):
        """The headline claim: O(q1+q2+q3) vs O(q1+q2³+q3⁴).

        Uses a system large enough that neither basis saturates at n.
        """
        from repro.mor import NORMReducer
        from repro.systems import QLDAE

        n = 30
        g1 = -1.5 * np.eye(n) + 0.25 * rng.standard_normal((n, n))
        g2 = 0.1 * rng.standard_normal((n, n * n))
        sys = QLDAE(g1, rng.standard_normal(n), g2=g2)
        orders = (4, 3, 2)
        rom_a = AssociatedTransformMOR(orders=orders).reduce(sys)
        rom_n = NORMReducer(orders=orders).reduce(sys)
        assert rom_a.order < rom_n.order
        assert rom_a.order <= sum(orders)


class TestLift:
    def test_lift_roundtrip(self, small_qldae, rng):
        rom = AssociatedTransformMOR(orders=(3, 2, 0)).reduce(small_qldae)
        xr = rng.standard_normal(rom.order)
        lifted = rom.lift(xr)
        assert lifted.shape == (5,)
        traj = rng.standard_normal((4, rom.order))
        assert rom.lift(traj).shape == (4, 5)

    def test_lift_shape_check(self, small_qldae):
        rom = AssociatedTransformMOR(orders=(2, 0, 0)).reduce(small_qldae)
        with pytest.raises(ValidationError):
            rom.lift(np.zeros(rom.order + 1))
