"""Sparse fast-path coverage.

CSR-stamped MNA circuits must run ``simulate`` and ``distortion_sweep``
with **zero densifications** of ``g1``/``mass``/iteration matrices
(enforced here by poisoning ``toarray`` during the sparse runs), and the
sparse and dense paths must agree to ≤ 1e-9.  Also covers the sparse
Krylov/associated chains, the ``d1`` nested-list regression and the
``frequency_response`` complex-input rejection.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.distortion import distortion_sweep
from repro.circuits.examples import quadratic_rc_ladder_netlist
from repro.errors import ValidationError
from repro.linalg.resolvent import ResolventFactory
from repro.mor.assoc import AssociatedTransformMOR
from repro.mor.krylov import krylov_basis
from repro.simulation.integrators import implicit_step
from repro.simulation.newton import JacobianCache
from repro.simulation.transient import simulate
from repro.systems import QLDAE, StateSpace
from repro.volterra.associated import AssociatedWorkspace, associated_h1


def make_stable_matrix(rng, n, margin=1.5, spread=0.3):
    """Random Hurwitz matrix (mirrors the conftest helper, which is not
    importable from test modules)."""
    return -margin * np.eye(n) + spread * rng.standard_normal((n, n))


def ladder_netlist(n_nodes, c=1.0, g_quad=0.5):
    """Quadratic RC ladder (the bench/example circuit) as a netlist."""
    return quadratic_rc_ladder_netlist(n_nodes, c=c, g_quad=g_quad)


def forbid_densify(monkeypatch):
    """Poison sparse→dense conversion for the duration of a test."""

    def boom(self, *args, **kwargs):
        raise AssertionError(
            f"sparse matrix {self.shape} was densified on the fast path"
        )

    for cls in (sp.csr_matrix, sp.csc_matrix, sp.coo_matrix):
        monkeypatch.setattr(cls, "toarray", boom)
        monkeypatch.setattr(cls, "todense", boom)


def drive(t):
    return 0.8 * np.cos(0.3 * t)


class TestSparseMNA:
    def test_auto_threshold(self):
        small = ladder_netlist(20).compile()
        large = ladder_netlist(300).compile()
        assert not small.is_sparse
        assert isinstance(small.g1, np.ndarray)
        assert large.is_sparse
        assert isinstance(large.g1, sp.csr_matrix)

    def test_explicit_flag_overrides(self):
        net = ladder_netlist(20)
        assert net.compile(sparse=True).is_sparse
        assert not net.compile(sparse=False).is_sparse

    def test_sparse_and_dense_stamps_agree(self):
        net = ladder_netlist(40, c=0.5)
        ssys = net.compile(sparse=True)
        dsys = net.compile(sparse=False)
        assert np.allclose(ssys.g1.toarray(), dsys.g1)
        assert np.allclose(ssys.mass.toarray(), dsys.mass)
        assert np.allclose(ssys.g2.toarray(), dsys.g2.toarray())
        assert np.allclose(ssys.b, dsys.b)

    def test_unit_capacitors_drop_identity_mass(self):
        ssys = ladder_netlist(40, c=1.0).compile(sparse=True)
        assert ssys.mass is None

    def test_identity_mass_tolerance_matches_dense(self):
        # Near-identity caps must compile to the same structure on both
        # paths (np.allclose tolerance, not an exact-zero check).
        net = ladder_netlist(40, c=1.0 + 1e-9)
        assert net.compile(sparse=True).mass is None
        assert net.compile(sparse=False).mass is None
        net = ladder_netlist(40, c=1.5)
        assert net.compile(sparse=True).mass is not None
        assert net.compile(sparse=False).mass is not None

    def test_sparse_jacobian_is_csr_and_matches_dense(self):
        net = ladder_netlist(60, c=0.5)
        ssys = net.compile(sparse=True)
        dsys = net.compile(sparse=False)
        rng = np.random.default_rng(3)
        x = rng.standard_normal(ssys.n_states)
        jac_s = ssys.jacobian(x, [0.4])
        jac_d = dsys.jacobian(x, [0.4])
        assert isinstance(jac_s, sp.csr_matrix)
        assert np.abs(jac_s.toarray() - jac_d).max() < 1e-12


class TestSparseSimulateEndToEnd:
    """The acceptance workload: n ≥ 1000, zero densifications, ≤ 1e-9."""

    N = 1024

    @pytest.fixture(scope="class")
    def systems(self):
        net = ladder_netlist(self.N, c=0.5)
        return net.compile(sparse=True), net.compile(sparse=False)

    def test_types_stay_sparse(self, systems):
        ssys, _ = systems
        assert ssys.is_sparse
        assert isinstance(ssys.g1, sp.csr_matrix)
        assert isinstance(ssys.mass, sp.csr_matrix)
        assert isinstance(
            ssys.jacobian(np.zeros(self.N), [0.0]), sp.csr_matrix
        )

    def test_simulate_parity_without_densifying(
        self, systems, monkeypatch
    ):
        ssys, dsys = systems
        res_dense = simulate(dsys, drive, 4.0, 0.05)
        forbid_densify(monkeypatch)
        res_sparse = simulate(ssys, drive, 4.0, 0.05)
        assert res_sparse.jacobian_factorizations >= 1
        assert np.abs(res_sparse.states - res_dense.states).max() <= 1e-9

    def test_iteration_matrix_factored_sparse(self, systems):
        ssys, _ = systems
        cache = JacobianCache()
        x0 = np.zeros(self.N)
        implicit_step(ssys, x0, [drive(0.0)], [drive(0.05)], 0.05,
                      jac_cache=cache)
        assert cache.lu is not None and cache.lu.is_sparse

    def test_distortion_sweep_parity_without_densifying(
        self, monkeypatch
    ):
        # Unit capacitors: identity mass is dropped, so the sweep needs
        # no to_explicit fold and runs fully sparse.
        net = ladder_netlist(self.N, c=1.0)
        ssys = net.compile(sparse=True)
        dsys = net.compile(sparse=False)
        omegas = np.linspace(0.05, 0.4, 4)
        _, hd2_d, hd3_d = distortion_sweep(dsys, omegas, amplitude=0.5)
        forbid_densify(monkeypatch)
        _, hd2_s, hd3_s = distortion_sweep(ssys, omegas, amplitude=0.5)
        factory = ResolventFactory.for_system(ssys)
        assert factory.schur is None  # sparse-LU branch served the sweep
        assert np.abs(hd2_s - hd2_d).max() / np.abs(hd2_d).max() <= 1e-9
        assert np.abs(hd3_s - hd3_d).max() / np.abs(hd3_d).max() <= 1e-9


class TestSparseToExplicit:
    def test_sparse_mass_fold_matches_dense(self):
        net = ladder_netlist(50, c=0.5)
        es = net.compile(sparse=True).to_explicit()
        ed = net.compile(sparse=False).to_explicit()
        assert sp.issparse(es.g1) and es.mass is None
        assert np.abs(es.g1.toarray() - ed.g1).max() < 1e-12
        assert np.abs(es.g2.toarray() - ed.g2.toarray()).max() < 1e-12
        assert np.allclose(es.b, ed.b)

    def test_cubic_sparse_mass_fold_matches_dense(self, rng):
        from repro.systems import CubicODE

        n = 20
        g1 = make_stable_matrix(rng, n)
        g3 = 0.05 * sp.random(n, n**3, density=2e-4, random_state=11)
        b = rng.standard_normal(n)
        mass = np.diag(0.5 + rng.random(n))
        dense = CubicODE(g1, b, g3=g3, mass=mass).to_explicit()
        sparse = CubicODE(
            sp.csr_matrix(g1), b, g3=g3, mass=sp.csr_matrix(mass)
        ).to_explicit()
        assert sp.issparse(sparse.g3)
        assert np.abs(sparse.g3.toarray() - dense.g3.toarray()).max() < 1e-12

    def test_singular_sparse_mass_raises(self):
        from repro.errors import SystemStructureError

        g1 = sp.csr_matrix(-np.eye(3))
        mass = sp.csr_matrix(np.diag([1.0, 0.0, 1.0]))
        system = QLDAE(g1, np.ones(3), mass=mass)
        with pytest.raises(SystemStructureError):
            system.to_explicit()


class TestSparseKrylovChains:
    def test_krylov_basis_sparse_matches_dense(self, rng):
        a = make_stable_matrix(rng, 40)
        a[np.abs(a) < 0.25] = 0.0  # sparsify off-diagonals
        np.fill_diagonal(a, np.diag(a) - 1.0)
        b = rng.standard_normal((40, 2))
        for s0 in (0.0, 0.7, 0.3 + 0.4j):
            v_dense = krylov_basis(a, b, 3, s0=s0)
            v_sparse = krylov_basis(sp.csr_matrix(a), b, 3, s0=s0)
            # Compare spanned subspaces (bases may differ by rotation).
            assert v_dense.shape == v_sparse.shape
            overlap = np.linalg.svd(
                v_dense.conj().T @ v_sparse, compute_uv=False
            )
            assert np.abs(overlap - 1.0).max() < 1e-8

    def test_associated_h1_chain_stays_sparse(self, rng):
        n = 50
        g1 = make_stable_matrix(rng, n)
        g1[np.abs(g1) < 0.25] = 0.0
        np.fill_diagonal(g1, np.diag(g1) - 1.0)
        g2 = 0.1 * sp.random(n, n * n, density=0.001, random_state=7)
        b = rng.standard_normal(n)
        dense_sys = QLDAE(g1, b, g2=g2)
        sparse_sys = QLDAE(sp.csr_matrix(g1), b, g2=g2)
        block_d = associated_h1(dense_sys).moment_vectors(4, s0=0.3)
        ws = AssociatedWorkspace.for_system(sparse_sys)
        block_s = associated_h1(sparse_sys, ws).moment_vectors(4, s0=0.3)
        assert ws.resolvent.schur is None  # factory is on the LU branch
        assert ws._schur is None  # the chain never built a Schur form
        assert np.abs(block_s - block_d).max() < 1e-9

    def test_norm_reducer_sparse_matches_dense(self):
        from repro.mor import NORMReducer

        ssys = ladder_netlist(300).compile(sparse=True)
        dsys = ladder_netlist(300).compile(sparse=False)
        rom_s = NORMReducer(orders=(3, 1, 0)).reduce(ssys)
        rom_d = NORMReducer(orders=(3, 1, 0)).reduce(dsys)
        assert rom_s.system.n_states == rom_d.system.n_states

    def test_sparse_resolvent_near_eigenvalue_raises(self):
        from repro.errors import NumericalError

        a = sp.csr_matrix(np.diag([-1.0, -2.0, -3.0]))
        factory = ResolventFactory(a)
        with pytest.raises(NumericalError):
            factory.solve(-1.0 + 1e-15, np.ones(3))

    def test_h1_only_mor_reduces_sparse_system(self, rng):
        ssys = ladder_netlist(300).compile(sparse=True)
        mor = AssociatedTransformMOR(orders=(4, 0, 0))
        rom = mor.reduce(ssys)
        assert rom.system.n_states <= 4
        dsys = ladder_netlist(300).compile(sparse=False)
        rom_d = AssociatedTransformMOR(orders=(4, 0, 0)).reduce(dsys)
        assert rom.system.n_states == rom_d.system.n_states


class TestStateSpaceSparse:
    def test_frequency_response_sparse_matches_dense(self, rng):
        a = make_stable_matrix(rng, 30)
        a[np.abs(a) < 0.25] = 0.0
        np.fill_diagonal(a, np.diag(a) - 1.0)
        b = rng.standard_normal((30, 2))
        c = rng.standard_normal((1, 30))
        dense = StateSpace(a, b, c)
        sparse = StateSpace(sp.csr_matrix(a), b, c)
        assert sp.issparse(sparse.a)
        omegas = np.linspace(0.1, 2.0, 7)
        hd = dense.frequency_response(omegas)
        hs = sparse.frequency_response(omegas)
        assert np.abs(hd - hs).max() < 1e-10

    def test_transfer_and_moments_sparse(self, rng):
        a = make_stable_matrix(rng, 12)
        dense = StateSpace(a, np.ones(12))
        sparse = StateSpace(sp.csr_matrix(a), np.ones(12))
        assert np.allclose(
            dense.transfer(0.5 + 0.2j), sparse.transfer(0.5 + 0.2j)
        )
        for s0 in (0.0, 0.4):
            md = dense.moments(3, s0=s0)
            ms = sparse.moments(3, s0=s0)
            for lhs, rhs in zip(md, ms):
                assert np.abs(lhs - rhs).max() < 1e-10
                assert lhs.dtype == rhs.dtype  # incl. real DC moments


class TestD1Normalization:
    """Regression: nested-list 2-D d1 used to be routed down the
    per-input-sequence path and rejected with an ndim error."""

    def test_nested_list_single_matrix(self):
        g1 = -np.eye(2)
        system = QLDAE(g1, [1.0, 0.0], d1=[[0.1, 0.0], [0.0, 0.2]])
        assert len(system.d1) == 1
        assert np.allclose(system.d1[0], [[0.1, 0.0], [0.0, 0.2]])

    def test_nested_list_matches_ndarray(self):
        g1 = -np.eye(2)
        via_list = QLDAE(g1, [1.0, 0.0], d1=[[0.1, 0.3], [0.0, 0.2]])
        via_array = QLDAE(
            g1, [1.0, 0.0], d1=np.array([[0.1, 0.3], [0.0, 0.2]])
        )
        assert np.allclose(via_list.d1[0], via_array.d1[0])

    def test_sequence_of_matrices_still_per_input(self):
        g1 = -np.eye(2)
        b = np.eye(2)  # two inputs
        mats = [[[0.1, 0.0], [0.0, 0.2]], [[0.0, 0.3], [0.0, 0.0]]]
        system = QLDAE(g1, b, d1=mats)
        assert len(system.d1) == 2
        assert np.allclose(system.d1[1], mats[1])

    def test_sparse_system_keeps_d1_sparse(self):
        g1 = sp.csr_matrix(-np.eye(3))
        d1 = sp.csr_matrix(0.1 * np.eye(3))
        system = QLDAE(g1, np.ones(3), d1=d1)
        assert sp.issparse(system.d1[0])
        jac = system.jacobian(np.zeros(3), [2.0])
        assert isinstance(jac, sp.csr_matrix)
        assert np.allclose(jac.toarray(), -np.eye(3) + 0.2 * np.eye(3))

    def test_dense_d1_on_sparse_system_coerced_to_csr(self):
        g1 = sp.csr_matrix(-np.eye(3))
        system = QLDAE(g1, np.ones(3), d1=0.1 * np.eye(3))
        assert sp.issparse(system.d1[0])
        jac = system.jacobian(np.zeros(3), [2.0])
        assert isinstance(jac, sp.csr_matrix)
        assert np.allclose(jac.toarray(), -np.eye(3) + 0.2 * np.eye(3))


class TestFrequencyResponseValidation:
    """Regression: complex input used to raise a raw TypeError (scalar)
    or silently discard the imaginary part (arrays)."""

    @pytest.fixture
    def system(self, stable5):
        return StateSpace(stable5, np.ones(5), np.ones((1, 5)))

    def test_scalar_complex_rejected(self, system):
        with pytest.raises(ValidationError, match="transfer"):
            system.frequency_response(1.0 + 2.0j)

    def test_complex_array_rejected(self, system):
        with pytest.raises(ValidationError, match="imaginary"):
            system.frequency_response(np.array([1.0, 1.0 + 0.5j]))

    def test_complex_dtype_with_zero_imag_accepted(self, system):
        omegas = np.array([0.5, 1.5], dtype=complex)
        out = system.frequency_response(omegas)
        ref = system.frequency_response(np.array([0.5, 1.5]))
        assert np.allclose(out, ref)

    def test_integer_input_accepted(self, system):
        out = system.frequency_response([1, 2])
        ref = system.frequency_response([1.0, 2.0])
        assert np.allclose(out, ref)

    def test_non_numeric_rejected(self, system):
        with pytest.raises(ValidationError):
            system.frequency_response(np.array(["a", "b"]))


class TestSparseConsumers:
    """Workflows fed by the auto-sparse assemble path must keep working."""

    def test_volterra_series_response_sparse_matches_dense(self):
        from repro.volterra.response import volterra_series_response

        net = ladder_netlist(300)
        ssys = net.compile(sparse=True)
        dsys = net.compile(sparse=False)

        def u_fn(t):
            return 0.3 * np.sin(t)

        res_s = volterra_series_response(ssys, u_fn, 2.0, 0.1, order=2)
        res_d = volterra_series_response(dsys, u_fn, 2.0, 0.1, order=2)
        for k in res_d.orders:
            assert np.abs(res_s.orders[k] - res_d.orders[k]).max() <= 1e-9

    def test_carleman_bilinearize_sparse_matches_dense(self, rng):
        from repro.systems.bilinear import carleman_bilinearize

        n = 6
        g1 = make_stable_matrix(rng, n)
        g2 = 0.1 * rng.standard_normal((n, n * n))
        b = rng.standard_normal(n)
        dense = carleman_bilinearize(QLDAE(g1, b, g2=g2))
        sparse = carleman_bilinearize(QLDAE(sp.csr_matrix(g1), b, g2=g2))
        assert np.allclose(dense.a, sparse.a)
        assert np.allclose(dense.n_mats[0], sparse.n_mats[0])


class TestNewtonErrorPropagation:
    def test_user_jacobian_error_propagates(self):
        # A RuntimeError raised inside the user's jacobian callable must
        # surface as-is, not be misreported as a singular iteration
        # matrix (the sparse splu path catches RuntimeError).
        from repro.simulation.newton import newton_solve

        def residual(x):
            return x**2 + 1.0

        def jacobian(x):
            raise RuntimeError("user bug")

        with pytest.raises(RuntimeError, match="user bug"):
            newton_solve(residual, jacobian, np.array([1.0]))


class TestPerfLogAppend:
    """The benchmark trajectory must accumulate, never overwrite."""

    @pytest.fixture
    def perf_log(self):
        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "perf_log.py"
        )
        spec = importlib.util.spec_from_file_location("perf_log", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_append_accumulates(self, perf_log, tmp_path):
        out = tmp_path / "BENCH.json"
        assert perf_log.append_run(out, {"meta": {"bench": "a"}}) == 1
        assert perf_log.append_run(out, {"meta": {"bench": "b"}}) == 2
        runs = perf_log.load_runs(out)
        assert [r["meta"]["bench"] for r in runs] == ["a", "b"]

    def test_legacy_single_run_wrapped(self, perf_log, tmp_path):
        import json

        out = tmp_path / "BENCH.json"
        out.write_text(json.dumps({"meta": {}, "case": {"t": 1.0}}))
        perf_log.append_run(out, {"meta": {"bench": "new"}})
        runs = perf_log.load_runs(out)
        assert len(runs) == 2
        assert runs[0]["case"] == {"t": 1.0}

    def test_corrupt_file_refuses_to_overwrite(self, perf_log, tmp_path):
        out = tmp_path / "BENCH.json"
        out.write_text('{"runs": [truncated')
        with pytest.raises(ValueError, match="refusing to overwrite"):
            perf_log.append_run(out, {"meta": {}})
        assert out.read_text() == '{"runs": [truncated'

    def test_unrecognized_shape_refuses_to_overwrite(
        self, perf_log, tmp_path
    ):
        out = tmp_path / "BENCH.json"
        out.write_text('[{"meta": {}}]')  # top-level list, not keyed
        with pytest.raises(ValueError, match="refusing to overwrite"):
            perf_log.append_run(out, {"meta": {}})
        assert out.read_text() == '[{"meta": {}}]'

    def test_concurrent_appends_serialize(self, perf_log, tmp_path):
        """Two racing bench runs must both land (lock + atomic replace)."""
        import json
        import threading

        out = tmp_path / "BENCH.json"
        n_threads, per_thread = 4, 8
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(idx):
            barrier.wait()
            try:
                for k in range(per_thread):
                    perf_log.append_run(
                        out, {"meta": {"bench": f"w{idx}", "k": k}}
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        runs = perf_log.load_runs(out)
        assert len(runs) == n_threads * per_thread
        json.loads(out.read_text())  # the document is intact JSON
        assert not list(tmp_path.glob("*.tmp*"))  # no torn temp files
