"""Pipeline API + CLI end-to-end: job coercion, netlist JSON round-trip,
run_pipeline routing (store, sweep, transient), and ``python -m repro``
on the shipped example spec.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.circuits import Netlist, quadratic_rc_ladder_netlist
from repro.cli import main as cli_main
from repro.errors import ValidationError
from repro.pipeline import (
    ReductionJob,
    SweepJob,
    TransientJob,
    run_pipeline,
    system_from_spec,
)
from repro.systems import QLDAE

REPO_ROOT = Path(__file__).resolve().parent.parent
SHIPPED_SPEC = REPO_ROOT / "examples" / "specs" / "rc_ladder.json"


class TestNetlistDictRoundTrip:
    def test_round_trip_compiles_identically(self):
        net = quadratic_rc_ladder_netlist(24, c=0.5)
        data = net.to_dict()
        back = Netlist.from_dict(data)
        assert back.name == net.name
        assert back.n_nodes == net.n_nodes
        assert back.n_inputs == net.n_inputs
        assert back.output_nodes == net.output_nodes
        a = net.compile(sparse=False)
        b = back.compile(sparse=False)
        assert np.array_equal(a.g1, b.g1)
        assert np.array_equal(a.mass, b.mass)
        assert np.array_equal(a.b, b.b)
        assert (a.g2 != b.g2).nnz == 0

    def test_json_serializable(self):
        data = quadratic_rc_ladder_netlist(10).to_dict()
        again = json.loads(json.dumps(data))
        assert Netlist.from_dict(again).n_nodes == 10

    def test_all_device_types_round_trip(self):
        net = Netlist(name="everything")
        net.add_resistor(1, 0, 2.0)
        net.add_capacitor(1, 0, 0.5)
        net.add_inductor(1, 2, 0.1)
        net.add_capacitor(2, 0, 1.0)
        net.add_conductance(2, 0, g1=0.1, g2=0.2, g3=0.05)
        net.add_diode(1, 2, i_s=2.0, kappa=10.0)
        net.add_current_source(1, 0, input_index=1, gain=0.5)
        net.set_output_nodes([2])
        back = Netlist.from_dict(net.to_dict())
        assert [type(d) for d in back.devices] == (
            [type(d) for d in net.devices]
        )
        assert back.devices == net.devices
        assert back.n_inputs == net.n_inputs == 2

    def test_bad_specs_raise(self):
        with pytest.raises(ValidationError):
            Netlist.from_dict({"devices": [{"type": "transistor"}]})
        with pytest.raises(ValidationError):
            Netlist.from_dict(
                {"devices": [{"type": "resistor", "bogus": 1}]}
            )
        with pytest.raises(ValidationError):
            Netlist.from_dict("not a dict")


class TestJobs:
    def test_reduction_job_coercion(self):
        assert ReductionJob.coerce(None) is None
        job = ReductionJob.coerce((4, 2, 0))
        assert job.orders == (4, 2, 0)
        job2 = ReductionJob.coerce(
            {"orders": [3, 2, 1], "strategy": "decoupled"}
        )
        assert job2.strategy == "decoupled"
        with pytest.raises(ValidationError):
            ReductionJob.coerce({"orders": [3, 2, 1], "bogus": 1})
        with pytest.raises(ValidationError):
            ReductionJob.coerce({"orders": [0, 0, 0]})  # reducer rejects

    def test_sweep_job_coercion(self):
        job = SweepJob.coerce({"start": 0.1, "stop": 0.5, "points": 5})
        assert job.omegas.shape == (5,)
        job2 = SweepJob.coerce([0.1, 0.2])
        assert np.array_equal(job2.omegas, [0.1, 0.2])
        with pytest.raises(ValidationError):
            SweepJob.coerce({"start": 0.1})  # missing stop
        with pytest.raises(ValidationError):
            SweepJob.coerce({"omegas": [0.0, 0.1]})  # DC point

    def test_transient_job_sources(self):
        job = TransientJob.coerce(
            {"source": {"kind": "sine", "amplitude": 0.1}, "t_end": 1.0,
             "dt": 0.1}
        )
        assert abs(job.source(0.25) - 0.1 * np.sin(np.pi / 2)) < 1e-12
        fn = lambda t: 0.5  # noqa: E731
        job2 = TransientJob.coerce(
            {"source": fn, "t_end": 1.0, "dt": 0.1}
        )
        assert job2.source is fn
        with pytest.raises(ValidationError):
            TransientJob.coerce(
                {"source": {"kind": "noise"}, "t_end": 1.0, "dt": 0.1}
            )
        with pytest.raises(ValidationError):
            TransientJob.coerce(
                {"source": {"kind": "sine", "volume": 2}, "t_end": 1.0,
                 "dt": 0.1}
            )


class TestSystemFromSpec:
    def test_devices_spec(self):
        spec = quadratic_rc_ladder_netlist(12).to_dict()
        system, info = system_from_spec(spec)
        assert isinstance(system, QLDAE)
        assert info["n_states"] == 12
        assert info["lifted"] is False

    def test_generator_spec_and_sparse_override(self):
        spec = {
            "generator": "quadratic_rc_ladder_netlist",
            "args": {"n_nodes": 20},
        }
        system, info = system_from_spec(spec, sparse=True)
        assert system.is_sparse and info["sparse"] is True

    def test_diode_spec_lifts_by_default(self):
        net = Netlist(name="diode")
        net.add_capacitor(1, 0, 1.0)
        net.add_resistor(1, 0, 1.0)
        net.add_diode(1, 0)
        net.add_current_source(1, 0)
        net.set_output_nodes([1])
        system, info = system_from_spec(net.to_dict())
        assert info["lifted"] is True
        assert isinstance(system, QLDAE)

    def test_unknown_generator_raises(self):
        with pytest.raises(ValidationError):
            system_from_spec({"generator": "warp_core"})


class TestRunPipeline:
    def test_store_round_trip_parity(self, tmp_path):
        net = quadratic_rc_ladder_netlist(24)
        sweep = {"start": 0.05, "stop": 0.4, "points": 4}
        cold = run_pipeline(net, reduce=(4, 2, 0), sweep=sweep,
                            store=tmp_path / "store")
        warm = run_pipeline(net, reduce=(4, 2, 0), sweep=sweep,
                            store=tmp_path / "store")
        assert cold.store_hit is False and warm.store_hit is True
        assert np.abs(warm.sweep["hd2"] - cold.sweep["hd2"]).max() <= 1e-12
        assert np.abs(warm.sweep["hd3"] - cold.sweep["hd3"]).max() <= 1e-12

    def test_lti_target_with_jobs_rejected_cleanly(self):
        from repro.systems import StateSpace

        ss = StateSpace(-np.eye(3), np.ones(3))
        with pytest.raises(ValidationError, match="polynomial system"):
            run_pipeline(ss, sweep={"start": 0.1, "stop": 0.3,
                                    "points": 2})

    def test_exponential_target_lifts_without_reduce(self):
        from repro.circuits import nonlinear_transmission_line

        result = run_pipeline(
            nonlinear_transmission_line(6),
            sweep={"start": 0.05, "stop": 0.2, "points": 2},
        )
        assert result.system_info["lifted"] is True
        assert result.sweep["on"] == "full"

    def test_full_model_queries_without_reduce(self):
        net = quadratic_rc_ladder_netlist(16)
        result = run_pipeline(net, sweep={"start": 0.1, "stop": 0.3,
                                          "points": 3})
        assert result.rom is None
        assert result.sweep["on"] == "full"
        report = result.report()
        assert "reduction" not in report
        json.dumps(report)  # must be JSON-able as-is

    def test_compare_full_metrics(self):
        net = quadratic_rc_ladder_netlist(20)
        result = run_pipeline(
            net,
            reduce=(5, 2, 0),
            sweep={"start": 0.05, "stop": 0.4, "points": 3,
                   "compare_full": True},
            transient={"source": {"kind": "step", "amplitude": 0.2},
                       "t_end": 1.0, "dt": 0.05, "compare_full": True},
        )
        assert result.sweep["hd2_worst_rel_dev"] < 1e-3
        assert result.transient["max_rel_error"] < 1e-3
        report = result.report()
        assert report["reduction"]["rom_order"] == result.rom.order
        json.dumps(report)


class TestCli:
    def _run(self, *argv):
        return cli_main(list(argv))

    def test_info(self, capsys):
        assert self._run("info", str(SHIPPED_SPEC)) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["system"]["n_states"] == 40
        assert report["command"] == "info"

    def test_sweep_shipped_spec(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        csv_path = tmp_path / "sweep.csv"
        code = self._run(
            "sweep", str(SHIPPED_SPEC), "--points", "4",
            "--out", str(out), "--csv", str(csv_path),
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["sweep"]["hd2"]) == 4
        assert report["sweep"]["hd2_worst_rel_dev"] < 1e-3
        assert json.loads(out.read_text()) == report
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("omega,hd2,hd3")
        assert len(lines) == 5

    def test_reduce_store_and_artifact(self, capsys, tmp_path):
        store = tmp_path / "models"
        artifact = tmp_path / "rom.npz"
        assert self._run(
            "reduce", str(SHIPPED_SPEC), "--store", str(store),
            "--artifact", str(artifact),
        ) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["reduction"]["store_hit"] is False
        assert artifact.exists()
        from repro.store import ReductionArtifact

        art = ReductionArtifact.load(artifact)
        assert art.rom.order == first["reduction"]["rom_order"]
        assert self._run(
            "reduce", str(SHIPPED_SPEC), "--store", str(store)
        ) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["reduction"]["store_hit"] is True
        assert second["store"]["hits"] == 1

    def test_store_ls_and_gc(self, capsys, tmp_path):
        store = tmp_path / "models"
        assert self._run(
            "reduce", str(SHIPPED_SPEC), "--store", str(store)
        ) == 0
        capsys.readouterr()
        assert self._run("store", "ls", str(store)) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["command"] == "store ls"
        assert listing["count"] == 1
        assert listing["entries"][0]["bytes"] > 0
        # generous budgets keep everything ...
        assert self._run(
            "store", "gc", str(store), "--ttl", "7d",
            "--max-bytes", "1g",
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["command"] == "store gc"
        assert report["evicted_count"] == 0
        # ... a one-byte budget clears the store
        assert self._run(
            "store", "gc", str(store), "--max-bytes", "1"
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["evicted_count"] == 1
        assert report["remaining_entries"] == 0

    def test_simulate(self, capsys, tmp_path):
        csv_path = tmp_path / "trace.csv"
        code = self._run(
            "simulate", str(SHIPPED_SPEC), "--t-end", "1.0",
            "--dt", "0.05", "--csv", str(csv_path),
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["transient"]["on"] == "rom"
        assert report["transient"]["max_rel_error"] < 1e-3
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0] == "t,output,full_output"
        assert len(lines) == 22  # header + 21 steps

    def test_orders_override(self, capsys):
        assert self._run(
            "reduce", str(SHIPPED_SPEC), "--orders", "4,2,0"
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["reduction"]["orders"] == [4, 2, 0]

    def test_report_is_strict_json(self, capsys, tmp_path):
        """Non-finite floats must never reach stdout as bare
        Infinity/NaN tokens — strict parsers (jq) reject those."""
        assert self._run("sweep", str(SHIPPED_SPEC), "--points", "3") == 0
        out = capsys.readouterr().out
        report = json.loads(out, parse_constant=lambda tok: pytest.fail(
            f"non-RFC-8259 token {tok} in CLI output"
        ))
        assert report["command"] == "sweep"

    def test_bad_spec_is_exit_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert self._run("info", str(bad)) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_jobs_is_exit_2(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(
            quadratic_rc_ladder_netlist(8).to_dict()
        ))
        assert self._run("sweep", str(spec)) == 2
        assert self._run("simulate", str(spec)) == 2
        capsys.readouterr()

    def test_subprocess_end_to_end(self, tmp_path):
        """python -m repro, as CI's smoke step invokes it."""
        result = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", str(SHIPPED_SPEC),
             "--points", "3"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        )
        assert result.returncode == 0, result.stderr
        report = json.loads(result.stdout)
        assert report["command"] == "sweep"
        assert len(report["sweep"]["omegas"]) == 3
