"""End-to-end integration tests: circuit → lift → reduce → simulate.

These follow the paper's experimental pipeline at reduced scale so they
run in seconds; the benchmarks run the paper-scale versions.
"""

import numpy as np
import pytest

from repro.analysis import max_relative_error
from repro.circuits import (
    nonlinear_transmission_line,
    quadratic_rc_ladder,
    rf_receiver_chain,
    varistor_surge_protector,
)
from repro.mor import AssociatedTransformMOR, NORMReducer
from repro.simulation import (
    simulate,
    sine_source,
    stack_sources,
    step_source,
    surge_source,
)


class TestFig2Pipeline:
    """§3.1: voltage-driven NTL, lifted QLDAE with D1."""

    def test_rom_tracks_full_model(self):
        ntl = nonlinear_transmission_line(
            n_nodes=12, source="voltage", diode_at_input=True
        )
        q = ntl.quadratic_linearize()
        assert q.d1 is not None
        u = sine_source(0.2, 0.3)
        full = simulate(q, u, 10.0, 0.02)
        rom = AssociatedTransformMOR(
            orders=(6, 3, 2), expansion_points=(0.5,)
        ).reduce(q)
        assert rom.order < q.n_states / 2
        red = simulate(rom.system, u, 10.0, 0.02)
        err = max_relative_error(full.output(0), red.output(0))
        assert err < 5e-3


class TestFig3Pipeline:
    """§3.2: current-driven NTL without D1, proposed vs NORM."""

    @pytest.fixture(scope="class")
    def setup(self):
        ntl = nonlinear_transmission_line(
            n_nodes=16,
            source="current",
            diode_at_input=False,
            diode_start=2,
        )
        q = ntl.quadratic_linearize()
        u = step_source(0.25)
        full = simulate(q, u, 10.0, 0.02)
        return q, u, full

    def test_proposed_more_compact_than_norm(self, setup):
        q, u, full = setup
        orders = (6, 3, 2)
        rom_a = AssociatedTransformMOR(
            orders=orders, expansion_points=(0.5,)
        ).reduce(q)
        rom_n = NORMReducer(orders=orders, s0=0.5).reduce(q)
        assert rom_a.order < rom_n.order
        assert rom_a.details["rom_linear_stable"]
        red_a = simulate(rom_a.system, u, 10.0, 0.02)
        red_n = simulate(rom_n.system, u, 10.0, 0.02)
        err_a = max_relative_error(full.output(0), red_a.output(0))
        err_n = max_relative_error(full.output(0), red_n.output(0))
        assert err_a < 0.02
        assert err_n < 0.02

    def test_rom_is_much_smaller(self, setup):
        """Wall-clock speedups are measured at paper scale in the
        benchmarks (toy-scale timings are dominated by Python overhead);
        here we assert the structural claim only."""
        q, u, full = setup
        rom = AssociatedTransformMOR(
            orders=(6, 3, 2), expansion_points=(0.5,)
        ).reduce(q)
        assert rom.order <= q.n_states // 2
        red = simulate(rom.system, u, 10.0, 0.02)
        assert np.isfinite(red.states).all()


class TestFig4Pipeline:
    """§3.3: MISO RF receiver."""

    def test_miso_reduction(self):
        rf = rf_receiver_chain(n_nodes=40, path_nodes=9).to_explicit()
        u = stack_sources(
            [sine_source(0.25, 0.05), sine_source(0.1, 0.12)]
        )
        full = simulate(rf, u, 30.0, 0.05)
        rom_a = AssociatedTransformMOR(orders=(6, 3, 1)).reduce(rf)
        rom_n = NORMReducer(orders=(6, 3, 1)).reduce(rf)
        assert rom_a.order < rom_n.order
        red = simulate(rom_a.system, u, 30.0, 0.05)
        err = max_relative_error(full.output(0), red.output(0))
        assert err < 0.02


class TestFig5Pipeline:
    """§3.4: cubic varistor surge protection."""

    def test_cubic_reduction(self):
        var = varistor_surge_protector(n_states=30)
        u = surge_source(amplitude=9.8e3, tau_rise=0.5, tau_fall=5.0)
        full = simulate(var, u, 30.0, 0.05)
        rom = AssociatedTransformMOR(
            orders=(2, 0, 1), expansion_points=(0.0, 2.0j)
        ).reduce(var)
        assert rom.order <= 12
        red = simulate(rom.system, u, 30.0, 0.05)
        err = max_relative_error(full.output(0), red.output(0))
        assert err < 0.1
        # the response actually clamps (nonlinearity active)
        assert np.abs(full.output(0)).max() > 1.0


class TestLiftingConsistency:
    def test_exponential_vs_lifted_vs_taylor(self):
        """Three model forms agree for small signals."""
        ntl = nonlinear_transmission_line(n_nodes=8)
        q = ntl.quadratic_linearize()
        t2 = ntl.taylor_polynomial(2)
        u = sine_source(0.05, 0.2)
        r_exp = simulate(ntl.to_explicit(), u, 8.0, 0.02)
        r_lift = simulate(q, u, 8.0, 0.02)
        r_tay = simulate(t2, u, 8.0, 0.02)
        # lifting is exact
        assert np.abs(
            r_exp.states - r_lift.states[:, :8]
        ).max() < 1e-7
        # Taylor is accurate for small signals
        scale = np.abs(r_exp.states).max()
        assert np.abs(r_exp.states - r_tay.states).max() < 0.02 * scale


class TestQuadraticLadderQuickstart:
    def test_quickstart_flow(self):
        """The README quickstart, as a test."""
        system = quadratic_rc_ladder(n_nodes=20)
        rom = AssociatedTransformMOR(orders=(4, 2, 0)).reduce(system)
        u = step_source(0.1)
        full = simulate(system.to_explicit(), u, 5.0, 0.01)
        red = simulate(rom.system, u, 5.0, 0.01)
        err = max_relative_error(full.output(0), red.output(0))
        assert err < 1e-2
        assert rom.order < system.n_states
