"""Process-pool engine backend: parity, worker protocol, shm lifecycle.

The process backend's contract is the same as the thread backend's —
wall-clock interleaving may change, results may not — plus the process
boundary obligations the thread backend never faces: payloads must
round-trip the pickle-free codec, large operands must travel by shared
memory and be cleaned up on every exit path (including a SIGKILLed
worker), worker exceptions must come back as the same typed errors the
serial path raises, and a nested plan inside a worker must degrade to
inline serial execution instead of touching a pool.
"""

import gc
import glob
import os

import numpy as np
import pytest
import scipy.sparse as sp

import repro.engine as engine
from repro.analysis.distortion import distortion_sweep
from repro.engine import SolvePlan
from repro.engine.process import ProcessPoolBackend, ProcessSpec
from repro.engine.shm import registry_stats
from repro.errors import TaskError, ValidationError
from repro.mor import AssociatedTransformMOR
from repro.systems import PolynomialODE
from repro.testing import faults

from conftest import make_stable_matrix

WORKERS = 2


@pytest.fixture(autouse=True)
def _serial_default():
    """Each test starts (and the suite ends) on the serial backend."""
    engine.configure(workers=1)
    yield
    engine.configure(workers=1)
    faults.reset()


def _sparse_ladder(n, rng):
    """A stable sparse tridiagonal system (CSR g1) with quadratic term."""
    main = -2.0 - 0.1 * rng.random(n)
    off = 0.5 * np.ones(n - 1)
    g1 = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    rows = rng.integers(0, n, size=3 * n)
    cols = rng.integers(0, n * n, size=3 * n)
    vals = 0.05 * rng.standard_normal(3 * n)
    g2 = sp.csr_matrix((vals, (rows, cols)), shape=(n, n * n))
    b = rng.standard_normal(n)
    return PolynomialODE(g1, b, g2=g2, output=np.eye(n)[0])


def _reset_caches(system):
    for attr in ("_resolvent_factory", "_volterra_evaluator",
                 "_associated_workspace"):
        try:
            setattr(system, attr, None)
        except AttributeError:
            pass


def _probe_plan(count=2, nested=3):
    plan = SolvePlan("test.probe")
    for _ in range(count):
        task = plan.add(lambda: None)
        task.spec = ProcessSpec(
            "repro.engine.process:_probe_worker", {"nested": nested}
        )
    return plan


# ---------------------------------------------------------------------------
# serial <-> process parity
# ---------------------------------------------------------------------------


class TestParity:
    def test_solve_many_dense(self, rng):
        from repro.linalg.resolvent import ResolventFactory

        a = make_stable_matrix(rng, 40)
        rhs = rng.standard_normal(40)
        shifts = 1j * np.linspace(0.1, 2.0, 9)
        serial = ResolventFactory(a).solve_many(shifts, rhs)
        with engine.using(workers=WORKERS, backend="process"):
            parallel = ResolventFactory(a).solve_many(shifts, rhs)
        np.testing.assert_array_equal(serial, parallel)

    def test_solve_many_sparse(self, rng):
        from repro.linalg.resolvent import ResolventFactory

        system = _sparse_ladder(60, rng)
        rhs = rng.standard_normal(60)
        shifts = 1j * np.linspace(0.1, 2.0, 9)
        serial = ResolventFactory(system.g1).solve_many(shifts, rhs)
        with engine.using(workers=WORKERS, backend="process"):
            parallel = ResolventFactory(system.g1).solve_many(shifts, rhs)
        np.testing.assert_array_equal(serial, parallel)

    def test_distortion_sweep_sparse(self, rng):
        system = _sparse_ladder(50, rng)
        omegas = np.linspace(0.1, 0.5, 6)
        _, hd2_s, hd3_s = distortion_sweep(system, omegas, 0.4)
        _reset_caches(system)
        with engine.using(workers=WORKERS, backend="process"):
            _, hd2_p, hd3_p = distortion_sweep(system, omegas, 0.4)
        np.testing.assert_array_equal(hd2_s, hd2_p)
        np.testing.assert_array_equal(hd3_s, hd3_p)

    def test_build_basis(self, small_qldae):
        # Basis chains are closures (no ProcessSpec): the process
        # backend must fall back to inline execution and still agree.
        explicit = small_qldae.to_explicit()
        points = tuple(1j * w for w in np.linspace(0.0, 1.0, 3))
        reducer = AssociatedTransformMOR(
            orders=(3, 2, 0), expansion_points=points,
            strategy="decoupled",
        )
        basis_s, _ = reducer.build_basis(explicit)
        with engine.using(workers=WORKERS, backend="process"):
            basis_p, _ = reducer.build_basis(explicit)
        assert np.abs(basis_s - basis_p).max() <= 1e-10


# ---------------------------------------------------------------------------
# worker protocol
# ---------------------------------------------------------------------------


class TestWorkerProtocol:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_start_methods(self, monkeypatch, start_method):
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        monkeypatch.setenv("REPRO_START_METHOD", start_method)
        backend = ProcessPoolBackend(WORKERS)
        try:
            results = _probe_plan().execute(executor=backend)
            assert backend.stats()["start_method"] == start_method
        finally:
            backend.shutdown()
        for probe in results:
            assert probe["pid"] != os.getpid()
            assert probe["in_worker"] is True

    def test_nested_plan_runs_inline_and_blas_pinned(self):
        with engine.using(workers=WORKERS, backend="process"):
            results = _probe_plan(count=2, nested=4).execute()
        for probe in results:
            assert probe["in_worker"] is True
            assert probe["nested"] == [0, 1, 4, 9]
            assert probe["blas_threads"] == "1"

    def test_worker_error_keeps_type_and_remote_traceback(self):
        plan = SolvePlan("test.error")
        for _ in range(2):
            task = plan.add(lambda: None)
            # int("boom") inside the worker: a genuine remote failure.
            task.spec = ProcessSpec(
                "repro.engine.process:_probe_worker", {"nested": "boom"}
            )
        with engine.using(workers=WORKERS, backend="process"):
            with pytest.raises(TaskError) as excinfo:
                plan.execute()
        cause = excinfo.value.__cause__
        assert isinstance(cause, ValueError)
        assert "boom" in str(cause)
        assert "_probe_worker" in getattr(cause, "remote_traceback", "")

    def test_closure_tasks_run_inline(self):
        with engine.using(workers=WORKERS, backend="process"):
            plan = SolvePlan("test.closures")
            for k in range(5):
                plan.add(lambda v=k: v * v)
            assert plan.execute() == [0, 1, 4, 9, 16]
            stats = engine.worker_stats()
        assert stats["tasks_inline"] >= 4

    def test_worker_count_validation(self):
        with pytest.raises(ValidationError):
            ProcessPoolBackend(1)


# ---------------------------------------------------------------------------
# shared-memory lifecycle
# ---------------------------------------------------------------------------


def _shm_files():
    return glob.glob(f"/dev/shm/repro-shm-{os.getpid()}-*")


class TestSharedMemory:
    def test_segments_released_after_plan(self, rng):
        from repro.linalg.resolvent import ResolventFactory

        a = make_stable_matrix(rng, 80)
        rhs = rng.standard_normal(80)
        shifts = 1j * np.linspace(0.1, 2.0, 9)
        factory = ResolventFactory(a)
        with engine.using(workers=WORKERS, backend="process"):
            factory.solve_many(shifts, rhs)
        # Segments may stay mapped while the source arrays are alive
        # (the pin); dropping the factory must unlink them.
        del factory, a, rhs
        gc.collect()
        assert registry_stats()["segments"] == 0
        assert _shm_files() == []

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="POSIX shm path required"
    )
    def test_worker_crash_cleans_up_segments(self, rng):
        from repro.linalg.resolvent import ResolventFactory

        system = _sparse_ladder(60, rng)
        rhs = rng.standard_normal(60)
        shifts = 1j * np.linspace(0.1, 2.0, 9)
        factory = ResolventFactory(system.g1)
        # Arm a SIGKILL at the first engine.task hit.  The armed spec is
        # inherited by fork workers; the parent never reaches the site
        # because every sparse solve_many chunk ships as a ProcessSpec.
        faults.configure("engine.task:1:kill")
        try:
            with engine.using(workers=WORKERS, backend="process"):
                with pytest.raises(TaskError):
                    factory.solve_many(shifts, rhs)
        finally:
            faults.reset()
        del factory, system, rhs
        gc.collect()
        assert registry_stats()["segments"] == 0
        assert _shm_files() == []


# ---------------------------------------------------------------------------
# configuration & stats
# ---------------------------------------------------------------------------


class TestConfiguration:
    def test_worker_stats_fields(self):
        with engine.using(workers=WORKERS, backend="process"):
            _probe_plan().execute()
            stats = engine.worker_stats()
        assert stats["backend"] == "process"
        assert stats["workers"] == WORKERS
        assert stats["pool_started"] is True
        assert stats["tasks_executed"] >= 2
        assert stats["start_method"] in ("fork", "spawn", "forkserver")
        assert stats["shm_segments"] >= 0
        assert stats["shm_bytes_mapped"] >= 0

    def test_env_selects_process_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        engine.executor._set_executor(None)
        try:
            assert engine.worker_stats()["backend"] == "process"
        finally:
            engine.configure(workers=1)

    def test_env_rejects_bad_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cluster")
        engine.executor._set_executor(None)
        with pytest.raises(ValidationError):
            engine.get_executor()
        engine.configure(workers=1)

    def test_configure_rejects_bad_backend(self):
        with pytest.raises(ValidationError):
            engine.configure(workers=2, backend="gpu")
