"""Tests for the associated-transform realizations — the paper's core."""

import numpy as np
import pytest

from repro.errors import SystemStructureError
from repro.linalg import kron_sum_power
from repro.systems import CubicODE, QLDAE
from repro.volterra import (
    AssociatedWorkspace,
    associated_h1,
    associated_h2,
    associated_h2_decoupled,
    associated_h3,
    volterra_series_response,
)


@pytest.fixture
def rng():
    return np.random.default_rng(91)


def dense(mat):
    return mat.toarray() if hasattr(mat, "toarray") else np.asarray(mat)


class TestEq17Realization:
    """Paper eq. (17): A2(H2) as [[G1, G2],[0, G1⊕G1]] etc."""

    def test_state_matrix_blocks(self, small_qldae):
        ws = AssociatedWorkspace(small_qldae)
        r2 = associated_h2(small_qldae, ws)
        a2 = r2.operator.dense()
        n = small_qldae.n_states
        assert np.allclose(a2[:n, :n], small_qldae.g1)
        assert np.allclose(a2[:n, n:], dense(small_qldae.g2))
        assert np.allclose(
            a2[n:, n:], dense(kron_sum_power(small_qldae.g1, 2))
        )

    def test_input_matrix_siso(self, small_qldae):
        """b̃2 = [D1 b; b ⊗ b] for SISO (paper eq. 17)."""
        ws = AssociatedWorkspace(small_qldae)
        r2 = associated_h2(small_qldae, ws)
        n = small_qldae.n_states
        b = small_qldae.b[:, 0]
        assert np.allclose(r2.b[:n, 0], small_qldae.d1[0] @ b)
        assert np.allclose(r2.b[n:, 0], np.kron(b, b))

    def test_eval_matches_manual_formula(self, small_qldae):
        """H2bar(s) = (sI−G1)^{-1}(G2 (sI−G1⊕G1)^{-1} b⊗b + D1 b)."""
        ws = AssociatedWorkspace(small_qldae)
        r2 = associated_h2(small_qldae, ws)
        n = small_qldae.n_states
        b = small_qldae.b[:, 0]
        s = 1.1 + 0.4j
        ks = dense(kron_sum_power(small_qldae.g1, 2))
        inner = dense(small_qldae.g2) @ np.linalg.solve(
            s * np.eye(n * n) - ks, np.kron(b, b)
        ) + small_qldae.d1[0] @ b
        manual = np.linalg.solve(s * np.eye(n) - small_qldae.g1, inner)
        assert np.allclose(r2.eval(s)[:, 0], manual)

    def test_impulse_matches_variational_g2_only(self, small_qldae_no_d1):
        """h2bar(t) == x2(t) under a narrow pulse (G2-only system —
        D1 systems differ by the theta(0) convention, see module docs)."""
        r2 = associated_h2(small_qldae_no_d1)
        # One-sample pulse: height 1/eps with eps = dt/2 gives discrete
        # impulse weight exactly 1 under the trapezoidal rule.
        dt = 0.002
        eps = dt / 2
        resp = volterra_series_response(
            small_qldae_no_d1,
            lambda t: (1.0 / eps) if t < eps else 0.0,
            3.0,
            dt,
            order=2,
        )
        h2 = r2.impulse_response(resp.times[::50])[:, :, 0]
        x2 = resp.orders[2][::50]
        scale = np.abs(h2).max()
        assert np.abs(x2 - h2).max() < 0.01 * scale

    def test_moment_vectors_span_taylor_directions(self, small_qldae):
        """The chain vectors span the Taylor coefficients of H2bar."""
        r2 = associated_h2(small_qldae)
        s0 = 0.3
        block = r2.moment_vectors(3, s0=s0)
        basis = np.linalg.qr(np.real(block))[0]
        # Taylor coefficients of H2bar at s0 via finite differences.
        eps = 1e-5
        f0 = np.real(r2.eval(s0)[:, 0])
        f1 = np.real(r2.eval(s0 + eps)[:, 0] - r2.eval(s0 - eps)[:, 0]) / (
            2 * eps
        )
        for vec in (f0, f1):
            proj = basis @ (basis.T @ vec)
            assert np.linalg.norm(proj - vec) < 1e-4 * np.linalg.norm(vec)

    def test_none_for_linear_system(self):
        sys = QLDAE(-np.eye(3), np.ones(3))
        assert associated_h2(sys) is None


class TestDecoupledEq18:
    def test_matches_coupled_eval(self, small_qldae):
        ws = AssociatedWorkspace(small_qldae)
        coupled = associated_h2(small_qldae, ws)
        dec = associated_h2_decoupled(small_qldae, ws)
        for s in (0.5, 1.5 + 0.8j):
            assert np.allclose(dec.eval(s), coupled.eval(s), atol=1e-10)

    def test_basis_blocks_span_moments(self, small_qldae):
        ws = AssociatedWorkspace(small_qldae)
        dec = associated_h2_decoupled(small_qldae, ws)
        coupled = associated_h2(small_qldae, ws)
        s0 = 0.4
        blocks = dec.basis_blocks(3, s0=s0)
        stacked = np.hstack([np.real(b) for b in blocks])
        basis = np.linalg.qr(stacked)[0]
        chain = np.real(coupled.moment_vectors(3, s0=s0))
        proj = basis @ (basis.T @ chain)
        assert np.abs(proj - chain).max() < 1e-8 * np.abs(chain).max()

    def test_pi_lives_in_workspace_cache(self, small_qldae):
        ws = AssociatedWorkspace(small_qldae)
        _ = associated_h2_decoupled(small_qldae, ws)
        assert ws._pi is not None


class TestH3Realization:
    def test_eval_matches_dense_transfer(self, small_qldae):
        r3 = associated_h3(small_qldae)
        ss = r3.to_state_space()
        s = 0.8 + 0.3j
        assert np.allclose(r3.eval(s)[:, 0], ss.transfer(s)[:, 0])

    def test_solve_shifted_matches_dense(self, small_qldae, rng):
        r3 = associated_h3(small_qldae)
        op = r3.operator
        rhs = rng.standard_normal(op.dim)
        x = op.solve_shifted(0.45, rhs)
        dense_a = op.dense()
        assert np.allclose(
            (dense_a + 0.45 * np.eye(op.dim)) @ x, rhs, atol=1e-8
        )

    def test_matvec_matches_dense(self, small_qldae, rng):
        r3 = associated_h3(small_qldae)
        op = r3.operator
        x = rng.standard_normal(op.dim)
        assert np.allclose(op.matvec(x), op.dense() @ x, atol=1e-10)

    def test_impulse_matches_variational_g2_only(self, small_qldae_no_d1):
        r3 = associated_h3(small_qldae_no_d1)
        dt = 0.002
        eps = dt / 2
        resp = volterra_series_response(
            small_qldae_no_d1,
            lambda t: (1.0 / eps) if t < eps else 0.0,
            3.0,
            dt,
            order=3,
        )
        h3 = r3.impulse_response(resp.times[::100])[:, :, 0]
        x3 = resp.orders[3][::100]
        scale = max(np.abs(h3).max(), 1e-12)
        assert np.abs(x3 - h3).max() < 0.02 * scale

    def test_cubic_system_impulse(self, small_cubic):
        r3 = associated_h3(small_cubic)
        dt = 0.002
        eps = dt / 2
        resp = volterra_series_response(
            small_cubic,
            lambda t: (1.0 / eps) if t < eps else 0.0,
            3.0,
            dt,
            order=3,
        )
        h3 = r3.impulse_response(resp.times[::100])[:, :, 0]
        x3 = resp.orders[3][::100]
        scale = max(np.abs(h3).max(), 1e-12)
        assert np.abs(x3 - h3).max() < 0.02 * scale

    def test_cubic_realization_structure(self, small_cubic):
        """Pure cubic: A3 = [[G1, G3],[0, ⊕³G1]], B3 = [0; sym(b⊗b⊗b)]."""
        r3 = associated_h3(small_cubic)
        n = small_cubic.n_states
        a3 = r3.operator.dense()
        assert a3.shape == (n + n**3,) * 2
        assert np.allclose(a3[:n, :n], small_cubic.g1)
        assert np.allclose(a3[:n, n:], dense(small_cubic.g3))
        b = small_cubic.b[:, 0]
        assert np.allclose(r3.b[:n, 0], 0.0)
        assert np.allclose(r3.b[n:, 0], np.kron(b, np.kron(b, b)))

    def test_h3_none_for_linear(self):
        sys = QLDAE(-np.eye(2), np.ones(2))
        assert associated_h3(sys) is None

    def test_mixed_quadratic_cubic(self, rng):
        """A PolynomialODE with both G2 and G3 carries all four blocks."""
        from repro.systems import PolynomialODE

        n = 3
        sys = PolynomialODE(
            -1.5 * np.eye(n) + 0.2 * rng.standard_normal((n, n)),
            rng.standard_normal(n),
            g2=0.1 * rng.standard_normal((n, n * n)),
            g3=0.05 * rng.standard_normal((n, n**3)),
        )
        r3 = associated_h3(sys)
        op = r3.operator
        assert op.has_quad and op.has_cubic
        n2 = n + n * n
        assert op.dim == n + 2 * n * n2 + n**3
        ss = r3.to_state_space()
        s = 1.2
        assert np.allclose(r3.eval(s), ss.transfer(s), atol=1e-10)


class TestMIMO:
    def test_h2_eval_matches_multivariate_diagonal(self, miso_qldae):
        """Associated H2 at s equals the multivariate H2's association,
        checked structurally: same input-column symmetry."""
        r2 = associated_h2(miso_qldae)
        from repro.volterra import input_permutation

        h = r2.eval(0.9)
        m = miso_qldae.n_inputs
        swap = input_permutation(m, (1, 0)).toarray()
        assert np.allclose(h, h @ swap, atol=1e-12)

    def test_unique_column_dedup(self, miso_qldae):
        r2 = associated_h2(miso_qldae)
        full = r2.moment_vectors(2, deduplicate=False)
        dedup = r2.moment_vectors(2, deduplicate=True)
        # m² = 4 columns, 3 unique multisets -> 8 vs 6 chain vectors
        assert full.shape[1] == 8
        assert dedup.shape[1] == 6
        # spans agree
        q = np.linalg.qr(np.real(dedup))[0]
        proj = q @ (q.T @ np.real(full))
        assert np.abs(proj - np.real(full)).max() < 1e-8

    def test_workspace_requires_explicit(self, rng):
        sys = QLDAE(
            -np.eye(2), np.ones(2), g2=np.zeros((2, 4)),
            mass=2 * np.eye(2)
        )
        with pytest.raises(SystemStructureError):
            AssociatedWorkspace(sys)
