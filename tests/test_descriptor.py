"""Unit tests for descriptor-pencil regularization (paper §4, bullet 2)."""

import numpy as np
import pytest

from repro.errors import SystemStructureError
from repro.systems import (
    DescriptorPencil,
    PolynomialODE,
    QLDAE,
    StateSpace,
    regularize_polynomial,
)


@pytest.fixture
def rng():
    return np.random.default_rng(61)


def index1_pencil(rng, n_ode=4, n_alg=2):
    """Random index-1 pencil: E = diag(I, 0) after a random congruence."""
    n = n_ode + n_alg
    e_core = np.zeros((n, n))
    e_core[:n_ode, :n_ode] = np.eye(n_ode)
    a_core = np.zeros((n, n))
    a_core[:n_ode, :n_ode] = -np.eye(n_ode) + 0.2 * rng.standard_normal(
        (n_ode, n_ode)
    )
    a_core[n_ode:, n_ode:] = np.eye(n_alg) + 0.1 * rng.standard_normal(
        (n_alg, n_alg)
    )
    a_core[:n_ode, n_ode:] = 0.3 * rng.standard_normal((n_ode, n_alg))
    left = np.eye(n) + 0.1 * rng.standard_normal((n, n))
    right = np.eye(n) + 0.1 * rng.standard_normal((n, n))
    return left @ e_core @ right, left @ a_core @ right, n_ode


class TestDescriptorPencil:
    def test_counts_finite_eigenvalues(self, rng):
        e, a, n_ode = index1_pencil(rng)
        pencil = DescriptorPencil(e, a)
        assert pencil.n_finite == n_ode
        assert pencil.n_infinite == 2

    def test_block_diagonalization(self, rng):
        e, a, _ = index1_pencil(rng)
        pencil = DescriptorPencil(e, a)
        res_e, res_a = pencil.transform_residuals()
        assert res_e < 1e-8
        assert res_a < 1e-8

    def test_index_one_detection(self, rng):
        e, a, _ = index1_pencil(rng)
        assert DescriptorPencil(e, a).index_one()

    def test_regular_invertible_pencil(self, rng):
        a = -np.eye(4) + 0.2 * rng.standard_normal((4, 4))
        pencil = DescriptorPencil(np.eye(4), a)
        assert pencil.n_finite == 4
        assert pencil.n_infinite == 0

    def test_singular_pencil_raises(self):
        # E and A share a common null vector -> det(λE − A) ≡ 0.
        e = np.diag([1.0, 0.0])
        a = np.diag([1.0, 0.0])
        with pytest.raises(SystemStructureError):
            DescriptorPencil(e, a)

    def test_regular_state_space_transfer_matches(self, rng):
        """The extracted ODE + feedthrough reproduces the DAE transfer
        function C (sE − A)^{-1} B."""
        e, a, _ = index1_pencil(rng)
        n = e.shape[0]
        b = rng.standard_normal(n)
        c = rng.standard_normal(n)
        pencil = DescriptorPencil(e, a)
        ss = pencil.regular_state_space(b, c)
        for s in (0.5, 1.0 + 0.7j, 3.0):
            full = c @ np.linalg.solve(s * e - a, b)
            red = ss.transfer(s)[0, 0]
            assert abs(full - red) < 1e-8


class TestRegularizePolynomial:
    def test_explicit_passthrough(self, small_qldae):
        assert regularize_polynomial(small_qldae) is small_qldae

    def test_invertible_mass_folds(self, rng):
        sys = QLDAE(-np.eye(3), np.ones(3), mass=2.0 * np.eye(3))
        reg = regularize_polynomial(sys)
        assert reg.mass is None
        assert np.allclose(reg.g1, -0.5 * np.eye(3))

    def test_linear_descriptor_reduction(self, rng):
        e, a, n_ode = index1_pencil(rng)
        n = e.shape[0]
        # Build an input that does NOT drive the algebraic equations so
        # the regular part captures the full transfer function exactly.
        pencil = DescriptorPencil(e, a)
        coeffs = np.concatenate(
            [rng.standard_normal(n_ode), np.zeros(n - n_ode)]
        )
        b = np.linalg.solve(pencil.w.T, coeffs)
        sys = PolynomialODE(
            a, b, mass=e, output=rng.standard_normal(n)
        )
        reg = regularize_polynomial(sys)
        assert reg.n_states == n_ode
        ss_full_tf = lambda s: sys.output @ np.linalg.solve(
            s * e - a, sys.b
        )
        red = StateSpace(reg.g1, reg.b, reg.output)
        for s in (0.7, 2.0):
            assert np.allclose(
                ss_full_tf(s), red.transfer(s), atol=1e-8
            )

    def test_input_into_algebraic_rejected(self, rng):
        e, a, _ = index1_pencil(rng)
        n = e.shape[0]
        sys = PolynomialODE(a, rng.standard_normal(n), mass=e)
        with pytest.raises(SystemStructureError):
            regularize_polynomial(sys)

    def test_nonlinear_coupling_into_algebraic_rejected(self, rng):
        e, a, n_ode = index1_pencil(rng)
        n = e.shape[0]
        g2 = np.zeros((n, n * n))
        # quadratic term touching every coordinate, incl. algebraic ones
        g2[0, :] = rng.standard_normal(n * n)
        sys = PolynomialODE(a, np.ones(n), g2=g2, mass=e)
        with pytest.raises(SystemStructureError):
            regularize_polynomial(sys)
