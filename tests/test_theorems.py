"""Tests of the paper's theorems via their numerical embodiments."""

import numpy as np
import pytest

from repro.volterra import (
    associated_h2,
    corollary1_residual,
    factored_property_residual,
    numerical_association_h2,
    theorem1_residual,
    theorem2_constant,
)


@pytest.fixture
def rng():
    return np.random.default_rng(111)


class TestTheorem1:
    def test_residual_tiny(self, rng):
        a1 = -np.eye(3) + 0.3 * rng.standard_normal((3, 3))
        a2 = -2 * np.eye(2) + 0.3 * rng.standard_normal((2, 2))
        assert theorem1_residual(a1, a2, [0.0, 0.5, 1.5]) < 1e-10

    def test_different_sizes(self, rng):
        a1 = -np.eye(4) + 0.2 * rng.standard_normal((4, 4))
        a2 = -np.eye(2)
        assert theorem1_residual(a1, a2, [1.0]) < 1e-10


class TestCorollary1:
    def test_three_factors(self, rng):
        mats = [
            -np.eye(2) + 0.2 * rng.standard_normal((2, 2))
            for _ in range(3)
        ]
        assert corollary1_residual(mats, [0.3, 1.0]) < 1e-10


class TestTheorem2:
    def test_constant_is_b(self, rng):
        a = -np.eye(3)
        b = rng.standard_normal(3)
        assert np.allclose(theorem2_constant(a, b), b)


class TestFactoredProperty:
    def test_eq8_residual(self, rng):
        a = -1.5 * np.eye(3) + 0.2 * rng.standard_normal((3, 3))
        b = rng.standard_normal(3)
        res = factored_property_residual(
            [-1.0, -2.5], a, b, [0.5, 1.0 + 0.3j]
        )
        assert res < 1e-12


@pytest.mark.slow
class TestAssociationIntegral:
    def test_g2_realization_matches_integral(self, small_qldae_no_d1):
        """The eq.-(17) realization equals the brute-force association
        integral (paper eq. 7) for a quadratic system."""
        r2 = associated_h2(small_qldae_no_d1)
        s = 1.2
        via_realization = r2.eval(s)
        via_integral = numerical_association_h2(
            small_qldae_no_d1, s, omega_max=800.0, n_points=40001
        )
        scale = np.abs(via_realization).max()
        assert (
            np.abs(via_realization - via_integral).max() < 5e-3 * scale
        )
