"""Circuit-scale lifted H2/H3 coverage: low-rank Π + matrix-free chains.

The acceptance workload for the sparse lifted machinery:

* dense ↔ low-rank Π parity (``pi_sylvester_residual ≤ 1e-8·‖G2‖`` at
  n ≈ 150) through the public residual API,
* full-order ``build_basis`` with ``orders=(q1, q2, q3)`` all > 0 and
  ``strategy="decoupled"`` on sparse circuits at n ≥ 1024 and n ≥ 2048
  with ``toarray`` poisoned (zero densifications), matching the dense
  Schur path to ≤ 1e-8 at n ≈ 200,
* a tracemalloc-capped regression pinning the streamed ``H3``
  evaluation to O(n·m³) memory on a cubic circuit (the former dense
  ``(n³, m³)`` accumulator measured 84 MB at n = 120 and went
  out-of-memory by n ≈ 500).
"""

import tracemalloc

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.distortion import single_tone_distortion
from repro.circuits.examples import (
    quadratic_rc_ladder_netlist,
    varistor_surge_protector,
)
from repro.errors import NumericalError, ValidationError
from repro.linalg.kronecker import sparse_kron_apply
from repro.linalg.resolvent import ResolventFactory
from repro.linalg.sylvester import (
    FactoredPi,
    FactoredTensor,
    KronSumSolver,
    LowRankKronSolver,
    pi_sylvester_residual,
    solve_pi_sylvester,
)
from repro.mor.assoc import AssociatedTransformMOR
from repro.systems import CubicODE
from repro.volterra.associated import (
    AssociatedWorkspace,
    FactoredH3Realization,
    associated_h2_decoupled,
    associated_h3,
)


def forbid_densify(monkeypatch):
    """Poison sparse→dense conversion for the duration of a test."""

    def boom(self, *args, **kwargs):
        raise AssertionError(
            f"sparse matrix {self.shape} was densified on the fast path"
        )

    for cls in (sp.csr_matrix, sp.csc_matrix, sp.coo_matrix):
        monkeypatch.setattr(cls, "toarray", boom)
        monkeypatch.setattr(cls, "todense", boom)


def low_rank_ladder(n_nodes, quad_nodes=8, sparse=True):
    """Sep-healthy ladder with quadratic conductances on a few nodes.

    Strong leak + weak coupling keeps the spectral spread below 2×, so
    the eq.-(18) Π equation is well separated — the conditioning regime
    the decoupled strategy (dense or factored) relies on.
    """
    net = quadratic_rc_ladder_netlist(
        n_nodes, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=quad_nodes
    )
    return net.compile(sparse=sparse).to_explicit()


def make_solver(system, **kwargs):
    g1 = system.g1
    factory = ResolventFactory.for_system(system)

    def solve(shift, rhs):
        return -factory.solve(-shift, np.asarray(rhs, dtype=complex))

    def solve_t(shift, rhs):
        return -factory.solve_transpose(
            -shift, np.asarray(rhs, dtype=complex)
        )

    return LowRankKronSolver(g1, solve, solve_t, **kwargs)


class TestFactoredTensor:
    def test_rank_one_roundtrip(self, rng):
        u, v, w = rng.standard_normal((3, 7))
        ft = FactoredTensor.rank_one([u, v, w], weight=2.5)
        ref = 2.5 * np.kron(u, np.kron(v, w))
        assert np.allclose(ft.to_vector(), ref)
        assert abs(ft.norm() - np.linalg.norm(ref)) < 1e-12

    def test_add_and_compress(self, rng):
        u, v = rng.standard_normal((2, 6))
        a = FactoredTensor.rank_one([u, v])
        b = FactoredTensor.rank_one([v, u]).scaled(0.5)
        s = a.add(b)
        ref = np.kron(u, v) + 0.5 * np.kron(v, u)
        assert np.allclose(s.to_vector(), ref)
        c = s.compress(1e-13)
        assert c.ranks <= (2, 2)
        assert np.allclose(c.to_vector(), ref)

    def test_zeros(self):
        z = FactoredTensor.zeros((4, 4))
        assert z.norm() == 0.0
        assert np.all(z.to_vector() == 0.0)


class TestSparseKronApply:
    def test_matches_dense_kron(self, rng):
        n, m = 12, 2
        g3 = sp.random(n, n**3, density=5e-4, random_state=3, format="csr")
        factors = [
            rng.standard_normal((n, m)) + 1j * rng.standard_normal((n, m))
            for _ in range(3)
        ]
        ref = g3 @ np.kron(factors[0], np.kron(factors[1], factors[2]))
        out = sparse_kron_apply(g3, factors)
        assert np.abs(out - ref).max() < 1e-12

    def test_validates_shapes(self, rng):
        g2 = sp.random(5, 25, density=0.1, random_state=0, format="csr")
        with pytest.raises(ValidationError):
            sparse_kron_apply(g2, [np.eye(4), np.eye(5)])


class TestLowRankKronSolves:
    def test_k2_k3_match_dense_schur(self, rng):
        system = low_rank_ladder(80, sparse=True)
        dense_g1 = low_rank_ladder(80, sparse=False).g1
        solver = make_solver(system, tol=1e-10)
        ref_solver = KronSumSolver(dense_g1)
        b = np.asarray(system.b[:, 0])
        c = rng.standard_normal(80)
        for shift in (0.0, 0.45, 0.2 + 0.8j):
            x = solver.solve(
                FactoredTensor.rank_one([b, c]), k=2, shift=shift
            )
            ref = ref_solver.solve(np.kron(b, c), k=2, shift=shift)
            assert (
                np.abs(x.to_vector() - ref).max() / np.abs(ref).max()
                < 1e-8
            )
        x3 = solver.solve(
            FactoredTensor.rank_one([b, b, c]), k=3, shift=0.1
        )
        ref3 = ref_solver.solve(np.kron(b, np.kron(b, c)), k=3, shift=0.1)
        assert np.abs(x3.to_vector() - ref3).max() / np.abs(ref3).max() < 1e-8

    def test_chain_reuses_basis(self):
        system = low_rank_ladder(100, sparse=True)
        solver = make_solver(system)
        b = np.asarray(system.b[:, 0])
        current = FactoredTensor.rank_one([b, b])
        current = solver.solve(current, k=2, shift=0.0)
        dim_after_first = solver.dim
        dims = []
        for _ in range(5):
            current = solver.solve(current, k=2, shift=0.0)
            dims.append(solver.dim)
        # Later chain steps live in the accumulated basis: the shared
        # space saturates instead of growing per step.
        assert dims[-1] == dims[-2] == dims[-3]
        assert dims[-1] <= dim_after_first + 8

    def test_zero_rhs_short_circuits(self):
        system = low_rank_ladder(40, sparse=True)
        solver = make_solver(system)
        z = solver.solve(FactoredTensor.zeros((40, 40)), k=2)
        assert z.norm() == 0.0

    def test_stall_raises_numerical_error(self):
        system = low_rank_ladder(60, sparse=True)
        solver = make_solver(system, max_dim=3)
        b = np.asarray(system.b[:, 0])
        with pytest.raises(NumericalError):
            solver.solve(
                FactoredTensor.rank_one([b, np.ones(60)]), k=2, tol=1e-12
            )


class TestLowRankPi:
    N = 150

    def test_dense_lowrank_pi_parity(self):
        ssys = low_rank_ladder(self.N, sparse=True)
        dsys = low_rank_ladder(self.N, sparse=False)
        solver = make_solver(ssys)
        fpi = solver.solve_pi(ssys.g2, tol=1e-9)
        assert isinstance(fpi, FactoredPi)
        assert fpi.rank < self.N // 2
        g2_norm = fpi.rhs_norm
        # The acceptance bound, through the public residual API — both
        # the factored evaluation and the dense evaluation of the same
        # factored Π.
        assert pi_sylvester_residual(ssys.g1, ssys.g2, fpi) <= 1e-8 * g2_norm
        pi_dense = solve_pi_sylvester(dsys.g1, dsys.g2.toarray())
        assert (
            pi_sylvester_residual(dsys.g1, dsys.g2.toarray(), fpi.to_dense())
            <= 1e-8 * g2_norm
        )
        scale = np.abs(pi_dense).max()
        assert np.abs(fpi.to_dense() - pi_dense).max() / scale < 1e-8

    def test_factored_pi_apply(self, rng):
        ssys = low_rank_ladder(self.N, sparse=True)
        dsys = low_rank_ladder(self.N, sparse=False)
        fpi = make_solver(ssys).solve_pi(ssys.g2, tol=1e-9)
        pi_dense = solve_pi_sylvester(dsys.g1, dsys.g2.toarray())
        v = rng.standard_normal((self.N**2, 3))
        scale = np.abs(pi_dense @ v).max()
        assert np.abs(fpi.apply(v) - pi_dense @ v).max() / scale < 1e-8
        u, w = rng.standard_normal((2, self.N))
        ft = FactoredTensor.rank_one([u, w])
        ref = pi_dense @ np.kron(u, w)
        assert (
            np.abs(fpi.apply_factored(ft) - ref).max()
            / max(np.abs(ref).max(), 1e-300)
            < 1e-7
        )

    def test_nonsymmetric_g1_pi_converges(self, rng):
        # Regression: the Bartels–Stewart coupling terms in the
        # right-projected sweep carried the wrong sign, masked by the
        # symmetric (diagonal-Schur) RC-ladder circuits.
        n = 40
        g1d = -np.diag(2.0 + 0.3 * rng.random(n))
        for k in range(n - 1):
            g1d[k, k + 1] = 0.25 * rng.standard_normal()
            g1d[k + 1, k] = 0.10 * rng.standard_normal()
        g1 = sp.csr_matrix(g1d)
        factory = ResolventFactory(g1)
        solver = LowRankKronSolver(
            g1,
            lambda s, r: -factory.solve(-s, np.asarray(r, complex)),
            lambda s, r: -factory.solve_transpose(
                -s, np.asarray(r, complex)
            ),
        )
        g2 = sp.lil_matrix((n, n * n))
        for _ in range(5):
            i, j = rng.integers(0, n, 2)
            row = rng.integers(0, n)
            g2[row, i * n + j] = rng.standard_normal()
            g2[row, j * n + i] = rng.standard_normal()
        g2 = sp.csr_matrix(g2)
        fpi = solver.solve_pi(g2, tol=1e-9)
        pi_dense = solve_pi_sylvester(g1d, g2.toarray())
        assert fpi.residual <= 1e-9 * fpi.rhs_norm
        scale = np.abs(pi_dense).max()
        assert np.abs(fpi.to_dense() - pi_dense).max() / scale < 1e-8

    def test_wide_g2_refuses(self):
        # Quadratic conductances on every node: G2's fiber count grows
        # with n, and the low-rank path must refuse rather than build a
        # huge right basis.
        system = low_rank_ladder(400, quad_nodes=400, sparse=True)
        solver = make_solver(system)
        with pytest.raises(NumericalError):
            solver.solve_pi(system.g2, max_seed=32)

    def test_workspace_pi_is_factored_sparse_dense_parity(self):
        ssys = low_rank_ladder(self.N, sparse=True)
        dsys = low_rank_ladder(self.N, sparse=False)
        ws_s = AssociatedWorkspace.for_system(ssys)
        ws_d = AssociatedWorkspace.for_system(dsys)
        assert ws_s.is_sparse and not ws_d.is_sparse
        assert isinstance(ws_s.pi, FactoredPi)
        assert isinstance(ws_d.pi, np.ndarray)
        scale = np.abs(ws_d.pi).max()
        assert np.abs(ws_s.pi.to_dense() - ws_d.pi).max() / scale < 1e-8


class TestDecoupledH2Sparse:
    N = 150

    def test_eval_and_chain_parity(self):
        ssys = low_rank_ladder(self.N, sparse=True)
        dsys = low_rank_ladder(self.N, sparse=False)
        dec_s = associated_h2_decoupled(ssys)
        dec_d = associated_h2_decoupled(dsys)
        assert dec_s.factored and not dec_d.factored
        for s in (0.2, 0.7 + 0.4j):
            es, ed = dec_s.eval(s), dec_d.eval(s)
            assert np.abs(es - ed).max() / np.abs(ed).max() < 1e-8
        bs = dec_s.basis_blocks(3)
        bd = dec_d.basis_blocks(3)
        for x, y in zip(bs, bd):
            assert np.abs(x - y).max() / np.abs(y).max() < 1e-7


class TestFactoredH3:
    def test_quadratic_h3_parity(self):
        ssys = low_rank_ladder(60, quad_nodes=6, sparse=True)
        dsys = low_rank_ladder(60, quad_nodes=6, sparse=False)
        r3s = associated_h3(ssys)
        r3d = associated_h3(dsys)
        assert isinstance(r3s, FactoredH3Realization)
        es, ed = r3s.eval(0.5), r3d.eval(0.5)
        assert np.abs(es - ed).max() / np.abs(ed).max() < 1e-7
        ms = r3s.moment_vectors(2, s0=0.3)
        md = r3d.moment_vectors(2, s0=0.3)
        assert np.abs(ms - md).max() / np.abs(md).max() < 1e-7

    def test_cubic_h3_parity(self):
        circ = varistor_surge_protector(n_states=120)
        dsys = circ.to_explicit()
        sparse_circ = CubicODE(
            sp.csr_matrix(circ.g1),
            circ.b,
            g3=circ.g3,
            mass=sp.csr_matrix(circ.mass),
            output=circ.output,
        )
        ssys = sparse_circ.to_explicit()
        r3s = associated_h3(ssys)
        r3d = associated_h3(dsys)
        assert isinstance(r3s, FactoredH3Realization)
        es, ed = r3s.eval(0.4), r3d.eval(0.4)
        assert np.abs(es - ed).max() / np.abs(ed).max() < 1e-8
        ms = r3s.moment_vectors(2, s0=0.0)
        md = r3d.moment_vectors(2, s0=0.0)
        assert np.abs(ms - md).max() / np.abs(md).max() < 1e-7


class TestFullOrderSparseMOR:
    """The acceptance criterion: orders=(q1, q2, q3) all > 0, decoupled,
    sparse, zero densifications."""

    def test_basis_matches_dense_at_n200(self):
        ssys = low_rank_ladder(200, sparse=True)
        dsys = low_rank_ladder(200, sparse=False)
        mor = AssociatedTransformMOR(orders=(3, 2, 1), strategy="decoupled")
        vs, _ = mor.build_basis(ssys)
        vd, _ = mor.build_basis(dsys)
        assert vs.shape == vd.shape
        overlap = np.linalg.svd(vs.conj().T @ vd, compute_uv=False)
        assert np.abs(overlap - 1.0).max() < 1e-8

    def test_n1024_poisoned_build(self, monkeypatch):
        system = low_rank_ladder(1024, sparse=True)
        forbid_densify(monkeypatch)
        mor = AssociatedTransformMOR(orders=(3, 2, 1), strategy="decoupled")
        basis, details = mor.build_basis(system)
        assert basis.shape[0] == 1024
        labels = {label for label, _, _ in details["blocks"]}
        assert {"H1", "H2-sub0", "H2-sub1", "H3"} <= labels

    def test_n2048_poisoned_end_to_end(self, monkeypatch):
        net = quadratic_rc_ladder_netlist(
            2048, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=8
        )
        system = net.compile(sparse=True)
        forbid_densify(monkeypatch)
        mor = AssociatedTransformMOR(orders=(2, 1, 1), strategy="decoupled")
        rom = mor.reduce(system)
        assert rom.system.n_states <= 2 + 2 * 1 + 1
        assert rom.full_order == 2048

    def test_coupled_strategy_still_guarded(self):
        system = low_rank_ladder(3000, sparse=True)
        from repro.errors import SystemStructureError

        mor = AssociatedTransformMOR(orders=(1, 1, 0), strategy="coupled")
        with pytest.raises(SystemStructureError):
            mor.build_basis(system)


class TestH3MemoryRegression:
    """Streamed G3 contraction: O(n·m³) peak, no (n³, m³) intermediate."""

    def test_h3_peak_memory_small(self):
        circ = varistor_surge_protector(n_states=120)
        system = circ.to_explicit()
        tracemalloc.start()
        res = single_tone_distortion(system, omega=0.7, amplitude=2.0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert np.isfinite(res["hd3"])
        # The dense (n³, m³) accumulator alone was 84 MB at n = 120.
        assert peak < 16e6

    def test_varistor_distortion_at_n1000_under_500mb(self):
        circ = varistor_surge_protector(n_states=1024)
        assert circ.is_sparse
        system = circ.to_explicit()
        tracemalloc.start()
        res = single_tone_distortion(system, omega=0.7, amplitude=2.0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert np.isfinite(res["hd3"]) and res["hd3"] > 0.0
        assert peak < 500e6
        # The real bound is far tighter: O(n·m³) plus the sparse LU.
        assert peak < 64e6

    def test_streamed_h3_matches_small_reference(self):
        # Same varistor circuit compiled small: streamed vs brute-force
        # dense contraction.
        circ = varistor_surge_protector(n_states=24)
        system = circ.to_explicit()
        from repro.volterra.evaluator import volterra_evaluator

        ev = volterra_evaluator(system)
        s1, s2, s3 = 0.3j, 0.5j, -0.2j
        h3 = ev.h3(s1, s2, s3)
        # Brute force: materialize the Kronecker triple.
        import itertools

        from repro.volterra.transfer import permutation_indices

        n, m = system.n_states, system.n_inputs
        triple = np.zeros((n**3, m**3), dtype=complex)
        for perm in itertools.permutations(range(3)):
            block = np.kron(
                ev.h1((s1, s2, s3)[perm[0]]),
                np.kron(
                    ev.h1((s1, s2, s3)[perm[1]]),
                    ev.h1((s1, s2, s3)[perm[2]]),
                ),
            )
            triple += block[:, permutation_indices(m, perm)]
        factory = ResolventFactory.for_system(system)
        ref = factory.solve(
            s1 + s2 + s3, 0.5 * (system.g3 @ triple)
        ) / 3.0
        assert np.abs(h3 - ref).max() / np.abs(ref).max() < 1e-12


class TestSuggestOrdersSparse:
    def test_sparse_cubic_matches_dense(self):
        from repro.mor.selection import suggest_orders

        circ = varistor_surge_protector(n_states=120)
        sparse_circ = CubicODE(
            sp.csr_matrix(circ.g1),
            circ.b,
            g3=circ.g3,
            mass=sp.csr_matrix(circ.mass),
            output=circ.output,
        )
        orders_s, hsv_s = suggest_orders(sparse_circ, probe=5)
        orders_d, _ = suggest_orders(circ, probe=5)
        assert orders_s == orders_d
        assert "H3" in hsv_s and hsv_s["H3"].size > 0

    def test_sparse_quadratic_runs(self):
        from repro.mor.selection import suggest_orders

        system = low_rank_ladder(300, sparse=True)
        orders, hsvs = suggest_orders(system, probe=5)
        assert all(isinstance(q, int) for q in orders)
        assert orders[0] >= 1 and orders[2] >= 1


class TestDecoupledFactoredMemory:
    def test_no_dense_kron_on_factored_path(self):
        system = low_rank_ladder(150, sparse=True)
        dec = associated_h2_decoupled(system)
        assert dec.factored
        # The (n², m²) Kronecker product must not be materialized.
        assert dec.bbs is None
        assert dec.n_cols == system.n_inputs ** 2
        assert dec.seed_linear.shape == (150, 1)


class TestPrimeDedup:
    def test_prime_h1_dedup_many_shifts(self):
        system = low_rank_ladder(64, sparse=True)
        from repro.volterra.evaluator import volterra_evaluator

        ev = volterra_evaluator(system)
        shifts = np.tile(1j * np.linspace(0.1, 1.0, 50), 4)
        ev.prime_h1(shifts)
        assert ev.stats["h1_solves"] == 50
        ev.prime_h2([(0.1j, 0.2j), (0.2j, 0.1j)] * 10)
        assert ev.stats["h2_solves"] == 1
