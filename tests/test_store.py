"""ModelStore + ReductionArtifact: fingerprints, hit/miss semantics,
corruption fallback, and the acceptance-criterion round-trip fidelity
(dense n = 200 and sparse n = 1024 with ``toarray`` poisoned).
"""

import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.distortion import distortion_sweep
from repro.circuits.examples import quadratic_rc_ladder_netlist
from repro.mor import AssociatedTransformMOR
from repro.store import (
    ModelStore,
    ReductionArtifact,
    fingerprint_system,
    parse_ttl,
    reducer_fingerprint,
)
from repro.systems import QLDAE, StateSpace


def forbid_densify(monkeypatch):
    def boom(self, *args, **kwargs):
        raise AssertionError(
            f"sparse matrix {self.shape} was densified on the fast path"
        )

    for cls in (sp.csr_matrix, sp.csc_matrix, sp.coo_matrix):
        monkeypatch.setattr(cls, "toarray", boom)
        monkeypatch.setattr(cls, "todense", boom)


def ladder(n, **kwargs):
    return quadratic_rc_ladder_netlist(n, **kwargs)


class TestFingerprints:
    def test_structural_identity_ignores_name(self):
        a = ladder(20).compile()
        b = ladder(20).compile()
        b.name = "renamed"
        assert fingerprint_system(a) == fingerprint_system(b)

    def test_data_change_changes_fingerprint(self):
        a = ladder(20).compile()
        b = ladder(20, g_quad=0.51).compile()
        assert fingerprint_system(a) != fingerprint_system(b)

    def test_sparse_and_dense_fingerprint_differently(self):
        net = ladder(20)
        assert fingerprint_system(net.compile(sparse=True)) != (
            fingerprint_system(net.compile(sparse=False))
        )

    def test_sparse_fingerprint_without_densify(self, monkeypatch):
        system = ladder(40).compile(sparse=True)
        forbid_densify(monkeypatch)
        assert fingerprint_system(system) == fingerprint_system(system)

    def test_class_distinguishes(self):
        qldae = QLDAE(-np.eye(3), np.ones(3))
        ss = StateSpace(-np.eye(3), np.ones(3))
        assert fingerprint_system(qldae) != fingerprint_system(ss)

    def test_unsupported_type_raises(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            fingerprint_system(object())

    def test_reducer_fingerprint_tracks_config(self):
        base = AssociatedTransformMOR(orders=(4, 2, 0))
        same = AssociatedTransformMOR(orders=(4, 2, 0))
        other_orders = AssociatedTransformMOR(orders=(5, 2, 0))
        other_strategy = AssociatedTransformMOR(
            orders=(4, 2, 0), strategy="decoupled"
        )
        other_point = AssociatedTransformMOR(
            orders=(4, 2, 0), expansion_points=(1.0,)
        )
        assert reducer_fingerprint(base) == reducer_fingerprint(same)
        assert reducer_fingerprint(base) != reducer_fingerprint(other_orders)
        assert reducer_fingerprint(base) != (
            reducer_fingerprint(other_strategy)
        )
        assert reducer_fingerprint(base) != reducer_fingerprint(other_point)


class TestStoreSemantics:
    def test_miss_then_hit(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        system = ladder(24).compile()
        reducer = AssociatedTransformMOR(orders=(4, 2, 0))
        art1, hit1 = store.reduce(system, reducer)
        assert hit1 is False
        art2, hit2 = store.reduce(system, reducer)
        assert hit2 is True
        assert np.array_equal(art2.rom.basis, art1.rom.basis)
        assert store.stats()["hits"] == 1
        assert store.stats()["misses"] == 1
        assert store.stats()["entries"] == 1
        key = store.key_for(system, reducer)
        assert key in store
        assert store.keys() == [key]

    def test_fresh_handle_hits_same_directory(self, tmp_path):
        root = tmp_path / "store"
        system = ladder(24).compile()
        reducer = AssociatedTransformMOR(orders=(4, 2, 0))
        _, hit1 = ModelStore(root).reduce(system, reducer)
        _, hit2 = ModelStore(root).reduce(system, reducer)
        assert (hit1, hit2) == (False, True)

    def test_different_config_is_a_miss(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        system = ladder(24).compile()
        store.reduce(system, AssociatedTransformMOR(orders=(4, 2, 0)))
        _, hit = store.reduce(
            system, AssociatedTransformMOR(orders=(4, 2, 0), tol=1e-8)
        )
        assert hit is False
        assert len(store) == 2

    def test_corruption_falls_back_to_recompute(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        system = ladder(24).compile()
        reducer = AssociatedTransformMOR(orders=(4, 2, 0))
        art, _ = store.reduce(system, reducer)
        key = store.key_for(system, reducer)
        path = store.artifact_path(key)
        path.write_bytes(path.read_bytes()[:64])  # truncate mid-archive
        art2, hit = store.reduce(system, reducer)
        assert hit is False
        assert store.stats()["corrupt"] == 1
        assert np.array_equal(art2.rom.basis, art.rom.basis)
        # quarantined, rewritten, and servable again
        assert path.with_name("artifact.npz.corrupt").exists()
        _, hit3 = store.reduce(system, reducer)
        assert hit3 is True

    def test_tampered_basis_detected_by_content_hash(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        system = ladder(24).compile()
        reducer = AssociatedTransformMOR(orders=(4, 2, 0))
        art, _ = store.reduce(system, reducer)
        key = store.key_for(system, reducer)
        # re-save an artifact whose basis was perturbed but whose
        # recorded hash was not: load must reject it
        art.rom.basis[0, 0] += 1e-3
        from repro.serialize import save_payload

        payload = {
            "__class__": "ReductionArtifact",
            "schema": 1,
            "rom": art.rom.to_dict(),
            "provenance": art.provenance,
        }
        save_payload(store.artifact_path(key), payload)
        assert store.load(key) is None
        assert store.stats()["corrupt"] == 1

    def test_schema_mismatch_is_clean_miss_not_corruption(self, tmp_path):
        """A future-schema entry reads as a miss but is neither counted
        corrupt nor quarantined (another library version can read it)."""
        from repro.serialize import save_payload

        store = ModelStore(tmp_path / "store")
        system = ladder(24).compile()
        reducer = AssociatedTransformMOR(orders=(4, 2, 0))
        art, _ = store.reduce(system, reducer)
        key = store.key_for(system, reducer)
        payload = art.to_dict()
        payload["schema"] = 99
        save_payload(store.artifact_path(key), payload)
        assert store.load(key) is None
        assert store.stats()["corrupt"] == 0
        assert store.artifact_path(key).exists()  # not quarantined
        _, hit = store.reduce(system, reducer)  # recompute-and-overwrite
        assert hit is False
        _, hit2 = store.reduce(system, reducer)
        assert hit2 is True

    def test_meta_json_is_queryable(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        system = ladder(24).compile()
        reducer = AssociatedTransformMOR(orders=(4, 2, 0))
        store.reduce(system, reducer)
        key = store.key_for(system, reducer)
        meta = json.loads(
            (store.artifact_path(key).parent / "meta.json").read_text()
        )
        assert meta["key"] == key
        assert meta["provenance"]["reduced_order"] > 0

    def test_artifact_verify_and_describe(self, tmp_path):
        system = ladder(24).compile()
        reducer = AssociatedTransformMOR(orders=(4, 2, 0))
        art = ReductionArtifact.from_reduction(
            reducer.reduce(system), system=system, reducer=reducer,
            system_fingerprint=fingerprint_system(system),
        )
        assert art.verify()
        desc = art.describe()
        assert desc["system_class"] == "QLDAE"
        assert desc["reducer"]["strategy"] == "coupled"
        path = tmp_path / "art.npz"
        art.save(path)
        back = ReductionArtifact.load(path)
        assert back.provenance["basis_hash"] == (
            art.provenance["basis_hash"]
        )
        assert np.array_equal(back.rom.basis, art.rom.basis)


class TestMaintenance:
    """``store ls`` / ``store gc``: sizes, TTL + size-budget eviction
    keyed on the ``last_access_unix`` stamps, oldest-first ordering."""

    def _fill(self, root, sizes=(12, 16, 20)):
        store = ModelStore(root)
        reducer = AssociatedTransformMOR(orders=(3, 2, 0))
        for n in sizes:
            store.reduce(ladder(n).compile(), reducer)
        return store

    def _stamp(self, store, key, when):
        meta = store.read_meta(key)
        meta["last_access_unix"] = when
        path = store._entry_dir(key) / "meta.json"
        path.write_text(json.dumps(meta))

    def test_parse_ttl(self):
        assert parse_ttl("7d") == 7 * 86400.0
        assert parse_ttl("12h") == 12 * 3600.0
        assert parse_ttl("90s") == 90.0
        assert parse_ttl(90) == 90.0
        assert parse_ttl(None) is None
        assert parse_ttl("0") is None
        with pytest.raises(Exception):
            parse_ttl("sideways")
        with pytest.raises(Exception):
            parse_ttl(-1)

    def test_ls_reports_every_entry_with_sizes(self, tmp_path):
        store = self._fill(tmp_path / "store")
        report = store.ls()
        assert report["count"] == 3
        assert len(report["entries"]) == 3
        assert all(row["bytes"] > 0 for row in report["entries"])
        assert report["total_bytes"] == sum(
            row["bytes"] for row in report["entries"]
        )
        assert report["total_bytes"] == sum(
            store.entry_bytes(key) for key in store.keys()
        )

    def test_gc_ttl_evicts_only_idle_entries(self, tmp_path):
        import time as _time

        store = self._fill(tmp_path / "store")
        stale = store.recent_keys()[-1]
        self._stamp(store, stale, _time.time() - 10 * 86400)
        report = store.gc(ttl="7d")
        assert report["evicted_count"] == 1
        assert report["evicted"][0]["key"] == stale
        assert report["evicted"][0]["reason"] == "ttl"
        assert stale not in store.keys()
        assert len(store) == 2
        # idle entries survive a generous TTL
        assert store.gc(ttl="365d")["evicted_count"] == 0

    def test_gc_size_budget_evicts_oldest_first(self, tmp_path):
        store = self._fill(tmp_path / "store")
        now = 1_700_000_000.0
        ordered = store.recent_keys()
        for age, key in enumerate(ordered):
            self._stamp(store, key, now - age)
        keep = store.entry_bytes(ordered[0])
        report = store.gc(max_bytes=keep, now=now)
        evicted = [entry["key"] for entry in report["evicted"]]
        # oldest last_access go first; the freshest entry survives
        assert evicted == [ordered[2], ordered[1]]
        assert store.keys() == [ordered[0]]
        assert report["remaining_bytes"] <= keep
        assert store.stats()["evictions"] == 2

    def test_gc_noop_under_budget(self, tmp_path):
        store = self._fill(tmp_path / "store")
        report = store.gc(max_bytes="1g")
        assert report["evicted_count"] == 0
        assert len(store) == 3

    def test_evicted_entry_reads_as_clean_miss(self, tmp_path):
        root = tmp_path / "store"
        store = self._fill(root, sizes=(12,))
        system = ladder(12).compile()
        reducer = AssociatedTransformMOR(orders=(3, 2, 0))
        store.gc(max_bytes=1)
        assert len(store) == 0
        art, hit = ModelStore(root).reduce(system, reducer)
        assert hit is False
        assert art.verify()


class TestRoundTripFidelity:
    """The ISSUE acceptance criterion: stored-and-reloaded artifacts
    reproduce the in-memory ROM's distortion sweep to <= 1e-12."""

    OMEGAS = np.linspace(0.05, 0.5, 5)

    def _sweep(self, system):
        _, hd2, hd3 = distortion_sweep(
            system.to_explicit(), self.OMEGAS, amplitude=0.05
        )
        return hd2, hd3

    def test_dense_n200(self, tmp_path):
        system = ladder(200).compile(sparse=False)
        reducer = AssociatedTransformMOR(orders=(3, 2, 1))
        store = ModelStore(tmp_path / "store")
        art, _ = store.reduce(system, reducer)
        hd2_mem, hd3_mem = self._sweep(art.rom.system)
        reloaded, hit = ModelStore(tmp_path / "store").reduce(
            system, reducer
        )
        assert hit is True
        hd2_disk, hd3_disk = self._sweep(reloaded.rom.system)
        assert np.abs(hd2_disk - hd2_mem).max() <= 1e-12
        assert np.abs(hd3_disk - hd3_mem).max() <= 1e-12

    @pytest.mark.slow
    def test_sparse_n1024_poisoned(self, tmp_path, monkeypatch):
        system = ladder(
            1024, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=8
        ).compile(sparse=True)
        reducer = AssociatedTransformMOR(
            orders=(3, 2, 1), strategy="decoupled"
        )
        store_root = tmp_path / "store"
        forbid_densify(monkeypatch)
        art, hit = ModelStore(store_root).reduce(system, reducer)
        assert hit is False
        hd2_mem, hd3_mem = self._sweep(art.rom.system)
        reloaded, hit2 = ModelStore(store_root).reduce(system, reducer)
        assert hit2 is True
        hd2_disk, hd3_disk = self._sweep(reloaded.rom.system)
        assert np.abs(hd2_disk - hd2_mem).max() <= 1e-12
        assert np.abs(hd3_disk - hd3_mem).max() <= 1e-12
