"""Tests for the NORM baseline reducer."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mor import NORMReducer
from repro.simulation import simulate, sine_source
from repro.analysis import max_relative_error


@pytest.fixture
def rng():
    return np.random.default_rng(131)


class TestConfiguration:
    def test_rejects_bad_orders(self):
        with pytest.raises(ValidationError):
            NORMReducer(orders=(1,))
        with pytest.raises(ValidationError):
            NORMReducer(orders=(0, 0, 0))


class TestSubspaceGrowth:
    def test_h2_vector_count_cubic_in_k2(self, small_qldae_no_d1):
        """Raw H2 moment-vector count grows like k2³/6 (the paper's
        'dimensionality curse')."""
        counts = []
        for k2 in (2, 3, 4):
            reducer = NORMReducer(orders=(1, k2, 0))
            _, details = reducer.build_basis(small_qldae_no_d1)
            h2_count = dict(
                (name, cnt) for name, cnt in details["blocks"]
            )["H2"]
            counts.append(h2_count)
        # Exact counts: number of (j,k,l>=0, j+k+l<=k2-1) triples
        expected = [
            sum(1 for j in range(k2) for k in range(k2 - j)
                for l in range(k2 - j - k))
            for k2 in (2, 3, 4)
        ]
        assert counts == expected
        assert counts[2] > 3 * counts[0]

    def test_h3_included_for_cubic(self, small_cubic):
        reducer = NORMReducer(orders=(2, 0, 2))
        _, details = reducer.build_basis(small_cubic)
        kinds = [name for name, _ in details["blocks"]]
        assert "H3" in kinds

    def test_rom_bigger_than_assoc_for_same_orders(self, small_qldae):
        from repro.mor import AssociatedTransformMOR

        # a larger system so the counts don't saturate at n
        rng = np.random.default_rng(5)
        n = 24
        from repro.systems import QLDAE

        g1 = -1.5 * np.eye(n) + 0.25 * rng.standard_normal((n, n))
        g2 = 0.1 * rng.standard_normal((n, n * n))
        sys = QLDAE(g1, rng.standard_normal(n), g2=g2)
        orders = (5, 3, 2)
        rom_n = NORMReducer(orders=orders).reduce(sys)
        rom_a = AssociatedTransformMOR(orders=orders).reduce(sys)
        assert rom_n.order > rom_a.order
        assert rom_n.order >= orders[0] + 10  # combinatorial growth


class TestAccuracy:
    def test_transient_matches_full(self, small_qldae):
        u = sine_source(0.25, 0.4)
        full = simulate(small_qldae, u, 8.0, 0.01)
        rom = NORMReducer(orders=(4, 2, 1)).reduce(small_qldae)
        red = simulate(rom.system, u, 8.0, 0.01)
        assert max_relative_error(full.output(0), red.output(0)) < 1e-3

    def test_h1_moments_matched(self, small_qldae_no_d1):
        from repro.systems import StateSpace

        sys = small_qldae_no_d1
        rom = NORMReducer(orders=(3, 0, 0)).reduce(sys)
        full_lin = StateSpace(sys.g1, sys.b, sys.output)
        rom_lin = StateSpace(
            rom.system.g1, rom.system.b, rom.system.output
        )
        for a, b in zip(full_lin.moments(3), rom_lin.moments(3)):
            assert np.allclose(a, b, rtol=1e-6, atol=1e-12)

    def test_nonzero_expansion_point(self, small_qldae):
        rom = NORMReducer(orders=(3, 2, 0), s0=0.5).reduce(small_qldae)
        u = sine_source(0.2, 0.3)
        full = simulate(small_qldae, u, 6.0, 0.01)
        red = simulate(rom.system, u, 6.0, 0.01)
        assert max_relative_error(full.output(0), red.output(0)) < 5e-3

    def test_miso(self, miso_qldae):
        rom = NORMReducer(orders=(3, 2, 0)).reduce(miso_qldae)
        u = lambda t: np.array([0.15 * np.sin(0.4 * t), 0.1])
        full = simulate(miso_qldae, u, 6.0, 0.01)
        red = simulate(rom.system, u, 6.0, 0.01)
        assert max_relative_error(full.output(0), red.output(0)) < 1e-2
