"""Unit tests for the variational Volterra-series response."""

import numpy as np
import pytest

from repro.errors import SystemStructureError, ValidationError
from repro.simulation import simulate, sine_source
from repro.systems import QLDAE
from repro.volterra import volterra_series_response


@pytest.fixture
def rng():
    return np.random.default_rng(101)


class TestScalingLaws:
    """x_k must scale with the k-th power of the input amplitude."""

    def test_order_scaling(self, small_qldae):
        u1 = lambda t: 0.1 * np.sin(0.8 * t)
        u2 = lambda t: 0.2 * np.sin(0.8 * t)
        r1 = volterra_series_response(small_qldae, u1, 4.0, 0.01, order=3)
        r2 = volterra_series_response(small_qldae, u2, 4.0, 0.01, order=3)
        for order, power in ((1, 1), (2, 2), (3, 3)):
            a = r1.orders[order]
            b = r2.orders[order]
            scale = np.abs(a).max()
            assert np.abs(b - (2.0**power) * a).max() < 1e-9 * max(
                scale, 1e-12
            )

    def test_series_converges_to_full_solution(self, small_qldae):
        """For small inputs, x1+x2+x3 approaches the nonlinear solution
        with error O(amplitude^4)."""
        errors = []
        for amp in (0.05, 0.1):
            u = lambda t, amp=amp: amp * np.sin(0.6 * t)
            series = volterra_series_response(
                small_qldae, u, 4.0, 0.005, order=3
            )
            full = simulate(small_qldae, u, 4.0, 0.005)
            err = np.abs(series.state() - full.states).max()
            errors.append(err / amp)
        # normalized error should shrink ~ amp^3
        assert errors[1] > errors[0] * 4


class TestMechanics:
    def test_first_order_is_linear_response(self, small_qldae):
        u = sine_source(0.2, 0.5)
        resp = volterra_series_response(small_qldae, u, 3.0, 0.01, order=1)
        lin = QLDAE(
            small_qldae.g1, small_qldae.b, output=small_qldae.output
        )
        full = simulate(lin, u, 3.0, 0.01)
        assert np.abs(resp.orders[1] - full.states).max() < 1e-8

    def test_output_applies_observation(self, small_qldae):
        u = sine_source(0.1, 0.5)
        resp = volterra_series_response(small_qldae, u, 2.0, 0.01)
        out = resp.output()
        expected = resp.state() @ small_qldae.output.T
        assert np.allclose(out, expected)

    def test_requires_explicit(self, rng):
        sys = QLDAE(-np.eye(2), np.ones(2), mass=2 * np.eye(2))
        with pytest.raises(SystemStructureError):
            volterra_series_response(sys, lambda t: 0.1, 1.0, 0.01)

    def test_rejects_order_4(self, small_qldae):
        with pytest.raises(ValidationError):
            volterra_series_response(
                small_qldae, lambda t: 0.1, 1.0, 0.01, order=4
            )

    def test_rejects_bad_grid(self, small_qldae):
        with pytest.raises(ValidationError):
            volterra_series_response(
                small_qldae, lambda t: 0.1, -1.0, 0.01
            )

    def test_input_shape_validation(self, small_qldae):
        with pytest.raises(ValidationError):
            volterra_series_response(
                small_qldae, lambda t: np.array([0.1, 0.2]), 1.0, 0.01
            )

    def test_miso_series(self, miso_qldae):
        u = lambda t: np.array([0.1 * np.sin(t), 0.05 * np.cos(2 * t)])
        resp = volterra_series_response(miso_qldae, u, 3.0, 0.01, order=2)
        full = simulate(miso_qldae, u, 3.0, 0.01)
        err = np.abs(resp.state() - full.states).max()
        assert err < 5e-4

    def test_cubic_second_order_vanishes(self, small_cubic):
        u = sine_source(0.2, 0.7)
        resp = volterra_series_response(small_cubic, u, 3.0, 0.01, order=3)
        assert np.abs(resp.orders[2]).max() == 0.0
        assert np.abs(resp.orders[3]).max() > 0.0
