"""Fault-injection harness + engine hardening + durable-write crash tests.

Three layers under test:

* the :mod:`repro.testing.faults` harness itself (spec parsing, hit
  counting, deterministic firing),
* the engine's failure semantics (:class:`~repro.errors.TaskError`
  identity wrapping, opt-in transient retry),
* the durability discipline (``durable_write`` / ``save_payload``
  survive a SIGKILL at every crash site; the store quarantines torn
  files without losing evidence).

Crash tests run the victim in a subprocess: the harness's ``kill`` kind
SIGKILLs the *current* process, which is exactly the point.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import engine
from repro.circuits import quadratic_rc_ladder_netlist
from repro.engine import SolvePlan, TaskError, set_task_retries
from repro.errors import (
    FaultInjected,
    NumericalError,
    ReproError,
    ValidationError,
)
from repro.mor.assoc import AssociatedTransformMOR
from repro.serialize import durable_write, load_payload, save_payload
from repro.store import ModelStore
from repro.testing import faults

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _clean_harness():
    """Every test starts and ends with no armed faults and no retries."""
    faults.configure(None)
    previous = set_task_retries(0)
    yield
    faults.configure(None)
    faults.reset()
    set_task_retries(previous)


def _subprocess(code, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.pop("REPRO_FAULT", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-c", code], env=env,
        capture_output=True, text=True,
    )


class TestHarness:
    def test_parse_and_hit_counting(self):
        faults.configure("a.site:3:raise")
        for _ in range(2):
            faults.fault_point("a.site")
        assert faults.hit_counts() == {"a.site": 2}
        with pytest.raises(FaultInjected) as info:
            faults.fault_point("a.site")
        assert info.value.site == "a.site"
        assert info.value.hit == 3
        # past the armed hit the site is inert again
        faults.fault_point("a.site")
        assert faults.hit_counts()["a.site"] == 4

    def test_unarmed_sites_are_free(self):
        faults.configure("x:1:raise")
        faults.fault_point("y")  # never raises, never counted
        assert faults.hit_counts() == {}

    def test_multiple_sites(self):
        faults.configure("one:1:raise,two:2:raise")
        with pytest.raises(FaultInjected):
            faults.fault_point("one")
        faults.fault_point("two")
        with pytest.raises(FaultInjected):
            faults.fault_point("two")

    def test_default_kind_is_kill(self):
        # <site>:<n> with no kind simulates power loss (SIGKILL)
        spec = faults.configure("site:1")
        assert spec == {"site": (1, "kill")}

    def test_bad_specs_rejected(self):
        for bad in ("site", "site:0", "site:x", "site:1:explode", ":1"):
            with pytest.raises(ValidationError):
                faults.configure(bad)

    def test_env_var_is_lazy(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "env.site:1:raise")
        faults.reset()
        with pytest.raises(FaultInjected):
            faults.fault_point("env.site")

    def test_kill_kind_sigkills_subprocess(self):
        result = _subprocess(
            "from repro.testing import faults\n"
            "faults.configure('die.here:1:kill')\n"
            "faults.fault_point('die.here')\n"
            "print('unreachable')\n"
        )
        assert result.returncode == -9
        assert "unreachable" not in result.stdout


class TestTaskError:
    def test_wrap_preserves_original_type(self):
        plan = SolvePlan(label="unit")

        def boom():
            raise NumericalError("singular pencil")

        plan.add(boom, tag=("H2", 0.0))
        plan.add(lambda: 42)
        with pytest.raises(TaskError, match="singular pencil") as info:
            plan.execute()
        err = info.value
        assert isinstance(err, NumericalError)
        assert err.plan_label == "unit"
        assert err.task_index == 0
        assert err.task_tag == ("H2", 0.0)
        assert err.attempts == 1
        assert isinstance(err.__cause__, NumericalError)

    def test_taskerror_is_reproerror(self):
        assert issubclass(TaskError, ReproError)

    def test_injected_fault_surfaces_with_identity(self):
        faults.configure("engine.task:2:raise")
        plan = SolvePlan(label="faulty")
        plan.add(lambda: 1, tag="a")
        plan.add(lambda: 2, tag="b")
        with pytest.raises(TaskError) as info:
            plan.execute()
        assert isinstance(info.value, FaultInjected)
        assert info.value.task_tag == "b"

    def test_retry_recovers_transient_failure(self):
        faults.configure("engine.task:1:raise")
        plan = SolvePlan(label="retried")
        plan.add(lambda: "ok", tag="t")
        assert plan.execute(retries=1) == ["ok"]
        assert faults.hit_counts()["engine.task"] == 2

    def test_retry_does_not_mask_deterministic_failures(self):
        calls = []

        def bad():
            calls.append(1)
            raise NumericalError("always")

        plan = SolvePlan(label="det")
        plan.add(bad)
        with pytest.raises(TaskError):
            plan.execute(retries=5)
        assert len(calls) == 1

    def test_retry_bound_is_respected(self):
        faults.configure("engine.task:1:raise,")
        calls = []

        def flaky():
            calls.append(1)
            return "fine"

        # fault fires on attempt 1; one retry suffices
        plan = SolvePlan(label="bounded")
        plan.add(flaky)
        assert plan.execute(retries=3) == ["fine"]
        assert len(calls) == 1

    def test_global_retry_configuration(self):
        assert set_task_retries(2) == 0
        assert engine.task_retries() == 2
        with pytest.raises(ValidationError):
            set_task_retries(-1)
        set_task_retries(None)  # back to env-lazy

    def test_env_retries(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "3")
        set_task_retries(None)
        assert engine.task_retries() == 3
        set_task_retries(0)


class TestDurableWrites:
    def test_durable_write_roundtrip(self, tmp_path):
        path = tmp_path / "report.json"
        durable_write(path, '{"ok": true}\n')
        assert json.loads(path.read_text()) == {"ok": True}

    def test_no_temp_litter_on_fault(self, tmp_path):
        path = tmp_path / "out.txt"
        faults.configure("durable.before_replace:1:raise")
        with pytest.raises(FaultInjected):
            durable_write(path, "data")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.parametrize(
        "site", ["durable.before_replace", "durable.after_replace"]
    )
    def test_kill_never_tears_existing_file(self, tmp_path, site):
        """SIGKILL around the rename: old or new content, never torn."""
        path = tmp_path / "state.json"
        path.write_text("old")
        result = _subprocess(
            "from repro.serialize import durable_write\n"
            f"durable_write({str(path)!r}, 'new')\n",
            env_extra={"REPRO_FAULT": f"{site}:1:kill"},
        )
        assert result.returncode == -9
        content = path.read_text()
        if site == "durable.before_replace":
            assert content == "old"
        else:
            assert content == "new"

    @pytest.mark.parametrize(
        "site", ["serialize.before_replace", "serialize.after_replace"]
    )
    def test_kill_never_tears_payload(self, tmp_path, site):
        path = tmp_path / "payload.npz"
        save_payload(path, {"x": np.arange(3.0)})
        result = _subprocess(
            "import numpy as np\n"
            "from repro.serialize import save_payload\n"
            f"save_payload({str(path)!r}, {{'x': np.arange(5.0)}})\n",
            env_extra={"REPRO_FAULT": f"{site}:1:kill"},
        )
        assert result.returncode == -9
        tree = load_payload(path)  # must parse whichever version won
        expected = 3.0 if site == "serialize.before_replace" else 5.0
        assert tree["x"].shape == (expected,)


def _tiny_system():
    net = quadratic_rc_ladder_netlist(
        12, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=3
    )
    return net.compile(sparse=True)


class TestStoreFaultTolerance:
    def test_quarantine_collision_gets_unique_suffix(self, tmp_path):
        store = ModelStore(tmp_path)
        system = _tiny_system()
        reducer = AssociatedTransformMOR(orders=(2, 1, 0))
        _, hit = store.reduce(system, reducer)
        assert not hit
        path = store.artifact_path(store.key_for(system, reducer))
        for _ in range(2):
            path.write_bytes(b"garbage")
            assert store.load(store.key_for(system, reducer)) is None
            store.reduce(system, reducer)
        assert path.with_name("artifact.npz.corrupt").exists()
        assert path.with_name("artifact.npz.corrupt.1").exists()
        stats = store.stats()
        assert stats["corrupt"] == 2
        assert stats["quarantine_collisions"] == 1

    def test_torn_truncation_quarantined_and_recomputed(self, tmp_path):
        store = ModelStore(tmp_path)
        system = _tiny_system()
        reducer = AssociatedTransformMOR(orders=(2, 1, 0))
        artifact, _ = store.reduce(system, reducer)
        path = store.artifact_path(store.key_for(system, reducer))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # torn write
        again, hit = store.reduce(system, reducer)
        assert not hit  # treated as a miss, recomputed
        assert np.array_equal(again.rom.basis, artifact.rom.basis)
        assert store.stats()["corrupt"] == 1
        assert path.exists()  # rewritten entry
        assert path.with_name("artifact.npz.corrupt").exists()

    def test_verify_reports_and_quarantines(self, tmp_path):
        store = ModelStore(tmp_path)
        system = _tiny_system()
        store.reduce(system, AssociatedTransformMOR(orders=(2, 1, 0)))
        store.reduce(system, AssociatedTransformMOR(orders=(3, 1, 0)))
        report = store.verify()
        assert report == {
            "checked": 2, "ok": 2, "corrupt": 0,
            "entries": report["entries"],
        }
        key = store.keys()[0]
        store.artifact_path(key).write_bytes(b"junk")
        report = store.verify()
        assert report["checked"] == 2
        assert report["corrupt"] == 1
        bad = [e for e in report["entries"] if not e["ok"]]
        assert bad[0]["key"] == key
        assert not store.artifact_path(key).exists()  # quarantined

    def test_verify_without_quarantine_leaves_files(self, tmp_path):
        store = ModelStore(tmp_path)
        system = _tiny_system()
        store.reduce(system, AssociatedTransformMOR(orders=(2, 1, 0)))
        key = store.keys()[0]
        store.artifact_path(key).write_bytes(b"junk")
        report = store.verify(quarantine=False)
        assert report["corrupt"] == 1
        assert store.artifact_path(key).exists()

    def test_kill_between_artifact_and_meta_is_recoverable(self, tmp_path):
        """SIGKILL after artifact.npz but before meta.json: the entry
        still loads (artifact is self-contained) and the next store()
        completes the metadata."""
        script = (
            "from repro.store import ModelStore\n"
            "from repro.mor.assoc import AssociatedTransformMOR\n"
            "from repro.circuits import quadratic_rc_ladder_netlist\n"
            "net = quadratic_rc_ladder_netlist(12, r=10.0, g_leak=1.0, "
            "g_quad=0.5, quad_nodes=3)\n"
            f"store = ModelStore({str(tmp_path)!r})\n"
            "store.reduce(net.compile(sparse=True), "
            "AssociatedTransformMOR(orders=(2, 1, 0)))\n"
        )
        result = _subprocess(
            script, env_extra={"REPRO_FAULT": "store.before_meta:1:kill"}
        )
        assert result.returncode == -9
        store = ModelStore(tmp_path)
        system = _tiny_system()
        reducer = AssociatedTransformMOR(orders=(2, 1, 0))
        key = store.key_for(system, reducer)
        assert store.artifact_path(key).exists()
        assert not (store._entry_dir(key) / "meta.json").exists()
        artifact, hit = store.reduce(system, reducer)
        assert hit  # the orphaned artifact itself is valid
        assert artifact.rom.basis.shape[0] == system.n_states
