"""Scatter kernel: np.add.at equivalence and the JIT gating knob."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.linalg._hotloops import jit_status, scatter_add_rows


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestScatterAddRows:
    def test_1d_real_bitwise(self, rng):
        rows = rng.integers(0, 50, size=400)
        contrib = rng.standard_normal(400)
        expected = np.zeros(50)
        np.add.at(expected, rows, contrib)
        out = scatter_add_rows(np.zeros(50), rows, contrib)
        np.testing.assert_array_equal(out, expected)

    def test_1d_complex_bitwise(self, rng):
        rows = rng.integers(0, 30, size=200)
        contrib = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        expected = np.zeros(30, dtype=complex)
        np.add.at(expected, rows, contrib)
        out = scatter_add_rows(np.zeros(30, dtype=complex), rows, contrib)
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("presorted", [True, False])
    def test_2d_matches_add_at(self, rng, presorted):
        rows = rng.integers(0, 40, size=300)
        if presorted:
            rows = np.sort(rows)
        contrib = rng.standard_normal((300, 7)) + 1j * rng.standard_normal(
            (300, 7)
        )
        expected = np.zeros((40, 7), dtype=complex)
        np.add.at(expected, rows, contrib)
        out = scatter_add_rows(
            np.zeros((40, 7), dtype=complex), rows, contrib
        )
        # reduceat groups sums pairwise: a few ulps from sequential.
        assert np.abs(out - expected).max() <= 1e-12

    def test_empty_rows_noop(self):
        out = np.zeros(5)
        result = scatter_add_rows(
            out, np.array([], dtype=np.intp), np.array([])
        )
        assert result is out
        np.testing.assert_array_equal(out, np.zeros(5))

    def test_single_element(self):
        out = scatter_add_rows(
            np.zeros(4), np.array([2]), np.array([3.5])
        )
        np.testing.assert_array_equal(out, [0.0, 0.0, 3.5, 0.0])


class TestJitKnob:
    def test_status_keys(self):
        status = jit_status()
        assert set(status) == {"mode", "available", "active"}
        assert status["mode"] in ("auto", "off")

    def test_off_disables(self, monkeypatch, rng):
        monkeypatch.setenv("REPRO_JIT", "off")
        status = jit_status()
        assert status == {"mode": "off", "available": None,
                          "active": False}
        rows = rng.integers(0, 10, size=50)
        contrib = rng.standard_normal(50)
        expected = np.zeros(10)
        np.add.at(expected, rows, contrib)
        out = scatter_add_rows(np.zeros(10), rows, contrib)
        np.testing.assert_array_equal(out, expected)

    def test_bad_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "always")
        with pytest.raises(ValidationError):
            jit_status()
