"""Public-API surface tests: imports, exports, and docstring hygiene."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.linalg",
    "repro.systems",
    "repro.volterra",
    "repro.mor",
    "repro.circuits",
    "repro.simulation",
    "repro.analysis",
]


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__")
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_top_level_exports(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol)

    def test_key_classes_importable_from_top(self):
        assert repro.QLDAE is not None
        assert repro.AssociatedTransformMOR is not None
        assert repro.NORMReducer is not None
        assert callable(repro.simulate)


class TestDocstrings:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_public_callables_documented(self, name):
        """Every exported class/function carries a docstring."""
        module = importlib.import_module(name)
        undocumented = []
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(symbol)
        assert not undocumented, f"{name}: {undocumented}"

    def test_public_methods_documented(self):
        """Spot-check: the main user-facing classes document methods."""
        from repro.mor import AssociatedTransformMOR, NORMReducer
        from repro.systems import PolynomialODE, StateSpace

        for cls in (
            AssociatedTransformMOR,
            NORMReducer,
            PolynomialODE,
            StateSpace,
        ):
            for name, member in inspect.getmembers(
                cls, predicate=inspect.isfunction
            ):
                if name.startswith("_"):
                    continue
                assert (member.__doc__ or "").strip(), (
                    f"{cls.__name__}.{name} lacks a docstring"
                )


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        from repro.errors import (
            ConvergenceError,
            NumericalError,
            ReproError,
            SystemStructureError,
            ValidationError,
        )

        for exc in (
            ConvergenceError,
            NumericalError,
            SystemStructureError,
            ValidationError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(ValidationError, ValueError)
        assert issubclass(NumericalError, ArithmeticError)

    def test_convergence_error_payload(self):
        from repro.errors import ConvergenceError

        err = ConvergenceError("stalled", iterations=7, residual=0.5)
        assert err.iterations == 7
        assert err.residual == 0.5
