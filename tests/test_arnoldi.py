"""Unit tests for Arnoldi iteration and basis merging."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.linalg import arnoldi, merge_bases, orthonormalize


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestArnoldi:
    def test_factorization_identity(self, rng):
        """A V_m = V_{m+1} H̄_m."""
        a = rng.standard_normal((8, 8))
        res = arnoldi(lambda v: a @ v, rng.standard_normal(8), 4)
        assert not res.breakdown
        v = res.basis
        h = res.hessenberg
        # rebuild V_{m+1} from the recurrence
        av = a @ v
        # the first m columns of V_{m+1} are V_m itself; reconstruct:
        approx = v @ h[:4, :4]
        resid = av - approx
        # residual is rank-1 in the direction of the next basis vector
        assert np.linalg.matrix_rank(resid, tol=1e-8) <= 1

    def test_orthonormal_basis(self, rng):
        a = rng.standard_normal((10, 10))
        res = arnoldi(lambda v: a @ v, rng.standard_normal(10), 6)
        gram = res.basis.conj().T @ res.basis
        assert np.allclose(gram, np.eye(res.size), atol=1e-12)

    def test_happy_breakdown(self):
        """Invariant subspace terminates early."""
        a = np.diag([1.0, 2.0, 3.0, 4.0])
        start = np.array([1.0, 1.0, 0.0, 0.0])
        res = arnoldi(lambda v: a @ v, start, 4)
        assert res.breakdown
        assert res.size == 2

    def test_zero_start_rejected(self):
        with pytest.raises(ValidationError):
            arnoldi(lambda v: v, np.zeros(4), 2)

    def test_krylov_span(self, rng):
        a = rng.standard_normal((7, 7))
        b = rng.standard_normal(7)
        res = arnoldi(lambda v: a @ v, b, 3)
        explicit = np.column_stack([b, a @ b, a @ a @ b])
        # each explicit vector lies in span(V)
        proj = res.basis @ (res.basis.conj().T @ explicit)
        assert np.allclose(proj, explicit, atol=1e-8)

    def test_operator_shape_check(self, rng):
        with pytest.raises(ValidationError):
            arnoldi(lambda v: np.zeros(3), rng.standard_normal(4), 2)


class TestOrthonormalize:
    def test_rank_deficient_deflation(self, rng):
        base = rng.standard_normal((6, 2))
        mat = np.hstack([base, base @ rng.standard_normal((2, 3))])
        q = orthonormalize(mat)
        assert q.shape == (6, 2)
        assert np.allclose(q.T @ q, np.eye(2), atol=1e-12)

    def test_preserves_span(self, rng):
        mat = rng.standard_normal((6, 3))
        q = orthonormalize(mat)
        proj = q @ (q.T @ mat)
        assert np.allclose(proj, mat, atol=1e-10)

    def test_empty_block(self, rng):
        out = orthonormalize(np.zeros((5, 0)))
        assert out.shape == (5, 0)


class TestMergeBases:
    def test_merges_and_deflates(self, rng):
        b1 = rng.standard_normal((8, 3))
        b2 = np.hstack([b1[:, :1], rng.standard_normal((8, 2))])
        merged = merge_bases([b1, b2])
        assert merged.shape[1] == 5
        assert np.allclose(merged.T @ merged, np.eye(5), atol=1e-12)

    def test_complex_blocks_split_to_real(self, rng):
        block = rng.standard_normal((6, 2)) + 1j * rng.standard_normal((6, 2))
        merged = merge_bases([block])
        assert merged.dtype.kind == "f"
        assert merged.shape[1] == 4

    def test_negligible_imaginary_dropped(self, rng):
        block = rng.standard_normal((6, 2)).astype(complex)
        block += 1e-14j
        merged = merge_bases([block])
        assert merged.shape[1] == 2

    def test_scale_invariance(self, rng):
        """Tiny-magnitude blocks must survive (column normalization)."""
        b1 = rng.standard_normal((8, 2))
        tiny = 1e-14 * rng.standard_normal((8, 2))
        merged = merge_bases([b1, tiny])
        assert merged.shape[1] == 4

    def test_row_mismatch_raises(self, rng):
        with pytest.raises(ValidationError):
            merge_bases([np.zeros((4, 1)), np.zeros((5, 1))])

    def test_all_empty_raises(self):
        with pytest.raises(ValidationError):
            merge_bases([np.zeros((4, 0))])
