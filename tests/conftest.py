"""Shared fixtures: small, well-conditioned random systems."""

import numpy as np
import pytest

from repro.systems import CubicODE, QLDAE


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_stable_matrix(rng, n, margin=1.5, spread=0.3):
    """Random Hurwitz matrix with eigenvalues well inside the left plane."""
    return -margin * np.eye(n) + spread * rng.standard_normal((n, n))


@pytest.fixture
def stable5(rng):
    return make_stable_matrix(rng, 5)


@pytest.fixture
def small_qldae(rng):
    """5-state SISO QLDAE with quadratic and bilinear terms."""
    n = 5
    g1 = make_stable_matrix(rng, n)
    g2 = 0.2 * rng.standard_normal((n, n * n))
    d1 = 0.25 * rng.standard_normal((n, n))
    b = rng.standard_normal(n)
    return QLDAE(g1, b, g2=g2, d1=d1, output=np.eye(n)[0])


@pytest.fixture
def small_qldae_no_d1(rng):
    n = 5
    g1 = make_stable_matrix(rng, n)
    g2 = 0.2 * rng.standard_normal((n, n * n))
    b = rng.standard_normal(n)
    return QLDAE(g1, b, g2=g2, output=np.eye(n)[0])


@pytest.fixture
def small_cubic(rng):
    n = 4
    g1 = make_stable_matrix(rng, n)
    g3 = 0.1 * rng.standard_normal((n, n**3))
    b = rng.standard_normal(n)
    return CubicODE(g1, b, g3=g3, output=np.eye(n)[-1])


@pytest.fixture
def miso_qldae(rng):
    """4-state, 2-input QLDAE (no D1)."""
    n, m = 4, 2
    g1 = make_stable_matrix(rng, n)
    g2 = 0.15 * rng.standard_normal((n, n * n))
    b = rng.standard_normal((n, m))
    return QLDAE(g1, b, g2=g2, output=np.eye(n)[-1])
