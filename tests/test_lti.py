"""Unit tests for the LTI state-space substrate."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.errors import SystemStructureError
from repro.linalg import transfer_moments_dense
from repro.systems import StateSpace


@pytest.fixture
def rng():
    return np.random.default_rng(41)


@pytest.fixture
def stable_ss(rng):
    a = -1.2 * np.eye(5) + 0.3 * rng.standard_normal((5, 5))
    b = rng.standard_normal(5)
    c = rng.standard_normal(5)
    return StateSpace(a, b, c)


class TestConstruction:
    def test_vector_b_and_c_promoted(self, stable_ss):
        assert stable_ss.b.shape == (5, 1)
        assert stable_ss.c.shape == (1, 5)
        assert stable_ss.d.shape == (1, 1)

    def test_default_c_is_identity(self, rng):
        ss = StateSpace(-np.eye(3), np.ones(3))
        assert np.allclose(ss.c, np.eye(3))

    def test_dimension_mismatch(self, rng):
        with pytest.raises(SystemStructureError):
            StateSpace(-np.eye(3), np.ones(4))

    def test_repr(self, stable_ss):
        assert "n_states=5" in repr(stable_ss)


class TestResponses:
    def test_transfer_at_point(self, stable_ss):
        s = 0.8 + 0.5j
        expected = stable_ss.c @ np.linalg.solve(
            s * np.eye(5) - stable_ss.a, stable_ss.b
        )
        assert np.allclose(stable_ss.transfer(s), expected)

    def test_frequency_response_shape(self, stable_ss):
        resp = stable_ss.frequency_response([0.1, 1.0, 10.0])
        assert resp.shape == (3, 1, 1)

    def test_impulse_response_matches_expm(self, stable_ss):
        ts = np.linspace(0.0, 2.0, 9)
        resp = stable_ss.impulse_response(ts)
        for idx, t in enumerate(ts):
            expected = stable_ss.c @ sla.expm(stable_ss.a * t) @ stable_ss.b
            assert np.allclose(resp[idx], expected, atol=1e-10)

    def test_impulse_nonuniform_grid(self, stable_ss):
        ts = np.array([0.0, 0.3, 1.0])
        resp = stable_ss.impulse_response(ts)
        assert resp.shape == (3, 1, 1)


class TestMoments:
    def test_moments_match_taylor(self, stable_ss):
        """Finite differences of H about s0 match the computed moments."""
        s0 = 0.5
        moments = stable_ss.moments(3, s0=s0)
        eps = 1e-4
        h = lambda s: stable_ss.transfer(s)[0, 0]
        m0 = h(s0)
        m1 = (h(s0 + eps) - h(s0 - eps)) / (2 * eps)
        m2 = (h(s0 + eps) - 2 * h(s0) + h(s0 - eps)) / eps**2 / 2
        assert abs(moments[0][0, 0] - m0) < 1e-8
        assert abs(moments[1][0, 0] - m1) < 1e-5
        assert abs(moments[2][0, 0] - m2) < 1e-2

    def test_moments_dense_helper_agrees(self, stable_ss):
        m_ss = stable_ss.moments(4, s0=0.0)
        m_fn = transfer_moments_dense(
            stable_ss.a, stable_ss.b, stable_ss.c, 4, s0=0.0
        )
        for a, b in zip(m_ss, m_fn):
            assert np.allclose(a, b)


class TestGramians:
    def test_lyapunov_residuals(self, stable_ss):
        p = stable_ss.controllability_gramian()
        q = stable_ss.observability_gramian()
        res_p = stable_ss.a @ p + p @ stable_ss.a.T + \
            stable_ss.b @ stable_ss.b.T
        res_q = stable_ss.a.T @ q + q @ stable_ss.a + \
            stable_ss.c.T @ stable_ss.c
        assert np.abs(res_p).max() < 1e-10
        assert np.abs(res_q).max() < 1e-10

    def test_hankel_values_sorted_positive(self, stable_ss):
        hsv = stable_ss.hankel_singular_values()
        assert np.all(np.diff(hsv) <= 1e-12)
        assert np.all(hsv >= 0.0)

    def test_unstable_raises(self, rng):
        ss = StateSpace(np.eye(2), np.ones(2), np.ones(2))
        with pytest.raises(SystemStructureError):
            ss.controllability_gramian()


class TestTransformations:
    def test_projection_preserves_moments(self, stable_ss):
        """Krylov projection matches leading moments."""
        from repro.mor import krylov_basis

        v = krylov_basis(stable_ss.a, stable_ss.b, 3, s0=0.0)
        red = stable_ss.project(v)
        m_full = stable_ss.moments(3)
        m_red = red.moments(3)
        for a, b in zip(m_full, m_red):
            assert np.allclose(a, b, rtol=1e-6, atol=1e-9)

    def test_series_cascade(self, rng):
        a1 = -np.eye(2)
        a2 = -2 * np.eye(3)
        ss1 = StateSpace(a1, np.ones(2), np.ones(2))
        ss2 = StateSpace(a2, np.ones(3), np.ones(3))
        cascade = ss1.series(ss2)
        s = 1.3 + 0.2j
        expected = ss2.transfer(s) @ ss1.transfer(s)
        assert np.allclose(cascade.transfer(s), expected)

    def test_series_dimension_check(self, rng):
        ss1 = StateSpace(-np.eye(2), np.ones(2), np.eye(2))  # 2 outputs
        ss2 = StateSpace(-np.eye(2), np.ones(2), np.ones(2))  # 1 input
        with pytest.raises(SystemStructureError):
            ss1.series(ss2)

    def test_stability_check(self, stable_ss):
        assert stable_ss.is_stable()
        assert not StateSpace(np.eye(2), np.ones(2)).is_stable()
