"""Unit tests for PolynomialODE / QLDAE / CubicODE."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SystemStructureError, ValidationError
from repro.systems import CubicODE, PolynomialODE, QLDAE


@pytest.fixture
def rng():
    return np.random.default_rng(51)


class TestConstruction:
    def test_qldae_rejects_cubic(self, rng):
        with pytest.raises(TypeError):
            QLDAE(-np.eye(2), np.ones(2), g3=np.zeros((2, 8)))

    def test_dimension_checks(self, rng):
        with pytest.raises(SystemStructureError):
            QLDAE(-np.eye(3), np.ones(3), g2=np.zeros((3, 8)))
        with pytest.raises(SystemStructureError):
            QLDAE(-np.eye(3), np.ones(4))

    def test_d1_single_matrix_siso(self, rng):
        sys = QLDAE(
            -np.eye(3), np.ones(3), g2=np.zeros((3, 9)),
            d1=0.1 * np.eye(3)
        )
        assert len(sys.d1) == 1

    def test_d1_all_zero_collapses_to_none(self):
        sys = QLDAE(
            -np.eye(3), np.ones(3), g2=np.zeros((3, 9)),
            d1=np.zeros((3, 3))
        )
        assert sys.d1 is None

    def test_d1_count_mismatch(self, rng):
        with pytest.raises(SystemStructureError):
            QLDAE(
                -np.eye(3),
                np.ones((3, 2)),
                g2=np.zeros((3, 9)),
                d1=[np.eye(3)],
            )

    def test_output_vector_promoted(self):
        sys = QLDAE(-np.eye(3), np.ones(3), output=np.array([1.0, 0, 0]))
        assert sys.output.shape == (1, 3)

    def test_repr_mentions_terms(self, small_qldae, small_cubic):
        assert "quadratic" in repr(small_qldae)
        assert "bilinear-input" in repr(small_qldae)
        assert "cubic" in repr(small_cubic)


class TestEvaluation:
    def test_rhs_matches_dense_formula(self, small_qldae, rng):
        x = rng.standard_normal(5)
        u = np.array([0.7])
        expected = (
            small_qldae.g1 @ x
            + small_qldae.g2 @ np.kron(x, x)
            + small_qldae.d1[0] @ x * 0.7
            + small_qldae.b[:, 0] * 0.7
        )
        assert np.allclose(small_qldae.rhs(x, u), expected)

    def test_rhs_cubic(self, small_cubic, rng):
        x = rng.standard_normal(4)
        expected = (
            small_cubic.g1 @ x
            + small_cubic.g3 @ np.kron(x, np.kron(x, x))
            + small_cubic.b[:, 0] * 0.3
        )
        assert np.allclose(small_cubic.rhs(x, [0.3]), expected)

    def test_jacobian_matches_finite_difference(self, small_qldae, rng):
        x = 0.3 * rng.standard_normal(5)
        u = np.array([0.4])
        jac = small_qldae.jacobian(x, u)
        eps = 1e-6
        fd = np.zeros((5, 5))
        for j in range(5):
            dx = np.zeros(5)
            dx[j] = eps
            fd[:, j] = (
                small_qldae.rhs(x + dx, u) - small_qldae.rhs(x - dx, u)
            ) / (2 * eps)
        assert np.allclose(jac, fd, atol=1e-6)

    def test_jacobian_cubic_finite_difference(self, small_cubic, rng):
        x = 0.3 * rng.standard_normal(4)
        u = np.array([0.0])
        jac = small_cubic.jacobian(x, u)
        eps = 1e-6
        for j in range(4):
            dx = np.zeros(4)
            dx[j] = eps
            fd = (
                small_cubic.rhs(x + dx, u) - small_cubic.rhs(x - dx, u)
            ) / (2 * eps)
            assert np.allclose(jac[:, j], fd, atol=1e-6)

    def test_input_shape_validation(self, small_qldae):
        with pytest.raises(ValidationError):
            small_qldae.rhs(np.zeros(5), [1.0, 2.0])

    def test_observe_trajectory(self, small_qldae, rng):
        traj = rng.standard_normal((7, 5))
        out = small_qldae.observe(traj)
        assert out.shape == (7, 1)
        assert np.allclose(out[:, 0], traj @ small_qldae.output[0])


class TestMass:
    def test_to_explicit_folds_mass(self, rng):
        n = 4
        mass = np.eye(n) * 2.0
        g1 = -np.eye(n)
        g2 = sp.csr_matrix(0.1 * rng.standard_normal((n, n * n)))
        sys = QLDAE(g1, np.ones(n), g2=g2, mass=mass)
        explicit = sys.to_explicit()
        assert explicit.mass is None
        assert np.allclose(explicit.g1, g1 / 2.0)
        assert np.allclose(
            explicit.g2.toarray(), g2.toarray() / 2.0
        )
        x = rng.standard_normal(n)
        # Same dynamics: mass^{-1} f_original == f_explicit
        assert np.allclose(
            np.linalg.solve(mass, sys.rhs(x, [0.5])),
            explicit.rhs(x, [0.5]),
        )

    def test_singular_mass_raises(self):
        mass = np.diag([1.0, 0.0])
        sys = QLDAE(-np.eye(2), np.ones(2), mass=mass)
        with pytest.raises(SystemStructureError):
            sys.to_explicit()

    def test_linear_part_requires_explicit(self):
        sys = QLDAE(-np.eye(2), np.ones(2), mass=2 * np.eye(2))
        with pytest.raises(SystemStructureError):
            sys.linear_part()


class TestProjection:
    def test_projected_rhs_is_galerkin(self, small_qldae, rng):
        v = np.linalg.qr(rng.standard_normal((5, 3)))[0]
        rom = small_qldae.project(v)
        xr = 0.2 * rng.standard_normal(3)
        u = np.array([0.6])
        # Galerkin: rom.rhs(xr) == Vᵀ full.rhs(V xr)
        assert np.allclose(
            rom.rhs(xr, u), v.T @ small_qldae.rhs(v @ xr, u), atol=1e-12
        )

    def test_projected_cubic(self, small_cubic, rng):
        v = np.linalg.qr(rng.standard_normal((4, 2)))[0]
        rom = small_cubic.project(v)
        assert isinstance(rom, CubicODE)
        xr = 0.3 * rng.standard_normal(2)
        assert np.allclose(
            rom.rhs(xr, [0.1]),
            v.T @ small_cubic.rhs(v @ xr, [0.1]),
            atol=1e-12,
        )

    def test_projection_type_preserved(self, small_qldae, rng):
        v = np.linalg.qr(rng.standard_normal((5, 2)))[0]
        assert isinstance(small_qldae.project(v), QLDAE)

    def test_projection_shape_check(self, small_qldae, rng):
        with pytest.raises(ValidationError):
            small_qldae.project(rng.standard_normal((4, 2)))

    def test_output_projected(self, small_qldae, rng):
        v = np.linalg.qr(rng.standard_normal((5, 3)))[0]
        rom = small_qldae.project(v)
        assert np.allclose(rom.output, small_qldae.output @ v)


class TestPolynomialODEGeneral:
    def test_combined_quadratic_cubic(self, rng):
        n = 3
        sys = PolynomialODE(
            -np.eye(n),
            np.ones(n),
            g2=0.1 * rng.standard_normal((n, n * n)),
            g3=0.05 * rng.standard_normal((n, n**3)),
        )
        x = 0.4 * rng.standard_normal(n)
        expected = (
            -x
            + sys.g2 @ np.kron(x, x)
            + sys.g3 @ np.kron(x, np.kron(x, x))
            + np.ones(n) * 0.2
        )
        assert np.allclose(sys.rhs(x, [0.2]), expected)
