"""Cross-cutting edge-case tests (second pass of coverage)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.linalg import moment_chain, moment_chain_operator
from repro.linalg.operators import DenseOperator
from repro.mor import AssociatedTransformMOR, NORMReducer, ReducedOrderModel
from repro.simulation import simulate, step_source
from repro.systems import PolynomialODE, QLDAE
from repro.volterra import (
    AssociatedWorkspace,
    associated_h1,
    associated_h2,
    associated_h3,
)


@pytest.fixture
def rng():
    return np.random.default_rng(191)


class TestMomentChains:
    def test_moment_chain_callable(self, rng):
        a = -np.eye(3) - 0.1 * rng.standard_normal((3, 3))
        inv = np.linalg.inv(a)
        chain = moment_chain(lambda v: inv @ v, np.ones(3), 3)
        assert len(chain) == 3
        assert np.allclose(chain[0], inv @ np.ones(3))
        assert np.allclose(chain[2], inv @ inv @ inv @ np.ones(3))

    def test_moment_chain_operator_shift(self, rng):
        a = -2 * np.eye(3)
        op = DenseOperator(a)
        chain = moment_chain_operator(op, np.ones(3), 2, shift=-0.5)
        # (A - 0.5 I)^{-1} = -1/2.5 I
        assert np.allclose(chain[0], -np.ones(3) / 2.5)
        assert np.allclose(chain[1], np.ones(3) / 2.5**2)

    def test_count_validation(self):
        with pytest.raises(ValidationError):
            moment_chain(lambda v: v, np.ones(2), 0)


class TestAssociatedRealizationExtras:
    def test_to_state_space_with_output(self, small_qldae):
        r2 = associated_h2(small_qldae)
        ss = r2.to_state_space(output=small_qldae.output)
        assert ss.n_outputs == 1
        s = 0.7
        direct = small_qldae.output @ r2.eval(s)
        assert np.allclose(ss.transfer(s), direct)

    def test_h1_realization_moments_match_linear(self, small_qldae):
        r1 = associated_h1(small_qldae)
        vecs = r1.moment_vectors(2, s0=0.0)
        # first chain vector is G1^{-1} b (up to sign conventions)
        expected = np.linalg.solve(-small_qldae.g1, small_qldae.b[:, 0])
        assert np.allclose(np.real(vecs[:, 0]), -expected)

    def test_eval_multiple_points_consistent(self, small_qldae):
        r2 = associated_h2(small_qldae)
        a = r2.eval(0.4 + 0.1j)
        b = r2.eval(0.4 - 0.1j)
        # real system: conjugate symmetry
        assert np.allclose(a, np.conj(b))

    def test_workspace_reuse_across_orders(self, small_qldae):
        ws = AssociatedWorkspace(small_qldae)
        r2 = associated_h2(small_qldae, ws)
        r3 = associated_h3(small_qldae, ws)
        assert r2.operator.kron_solver is ws.kron_solver
        assert r3.operator.workspace is ws


class TestReducedOrderModelContainer:
    def test_repr_and_properties(self, small_qldae):
        rom = AssociatedTransformMOR(orders=(2, 1, 0)).reduce(small_qldae)
        text = repr(rom)
        assert "order" in text
        assert rom.full_order == 5
        assert rom.expansion_points == (0.0,)

    def test_manual_construction_validates_basis(self):
        with pytest.raises(ValidationError):
            ReducedOrderModel(None, np.zeros(3), "m")


class TestMixedPolynomialReduction:
    def test_quadratic_plus_cubic_system(self, rng):
        """A system with BOTH G2 and G3 goes through the full pipeline."""
        n = 8
        g1 = -1.4 * np.eye(n) + 0.2 * rng.standard_normal((n, n))
        sys = PolynomialODE(
            g1,
            rng.standard_normal(n),
            g2=0.1 * rng.standard_normal((n, n * n)),
            g3=0.05 * rng.standard_normal((n, n**3)),
            output=np.eye(n)[0],
        )
        rom = AssociatedTransformMOR(orders=(4, 2, 2)).reduce(sys)
        assert rom.system.g2 is not None
        assert rom.system.g3 is not None
        u = step_source(0.2)
        full = simulate(sys, u, 5.0, 0.01)
        red = simulate(rom.system, u, 5.0, 0.01)
        scale = np.abs(full.output(0)).max()
        assert np.abs(full.output(0) - red.output(0)).max() < 0.01 * scale

    def test_norm_on_mixed_system(self, rng):
        n = 6
        g1 = -1.4 * np.eye(n) + 0.2 * rng.standard_normal((n, n))
        sys = PolynomialODE(
            g1,
            rng.standard_normal(n),
            g2=0.1 * rng.standard_normal((n, n * n)),
            g3=0.05 * rng.standard_normal((n, n**3)),
        )
        rom = NORMReducer(orders=(3, 2, 2)).reduce(sys)
        kinds = [name for name, _ in rom.details["blocks"]]
        assert "H3" in kinds


class TestComplexExpansionPoints:
    def test_complex_point_real_basis(self, small_qldae):
        rom = AssociatedTransformMOR(
            orders=(2, 1, 0), expansion_points=(1.0j,)
        ).reduce(small_qldae)
        assert rom.basis.dtype.kind == "f"
        # real + imaginary directions both present
        assert rom.order >= 4

    def test_repeated_points_deflate(self, small_qldae):
        rom_single = AssociatedTransformMOR(
            orders=(3, 0, 0), expansion_points=(0.0,)
        ).reduce(small_qldae)
        rom_double = AssociatedTransformMOR(
            orders=(3, 0, 0), expansion_points=(0.0, 0.0)
        ).reduce(small_qldae)
        assert rom_double.order == rom_single.order


class TestSimulationProtocolDuckTyping:
    def test_mass_form_rom_simulates(self, rng):
        """A mass-form ROM (from congruence projection) integrates."""
        n = 10
        mass = np.diag(rng.uniform(0.5, 2.0, n))
        g1 = -np.eye(n) - 0.1 * rng.standard_normal((n, n))
        g1 = 0.5 * (g1 + g1.T)  # symmetric negative definite
        sys = QLDAE(
            g1,
            rng.standard_normal(n),
            g2=0.05 * rng.standard_normal((n, n * n)),
            mass=mass,
        )
        rom = AssociatedTransformMOR(orders=(3, 2, 0)).reduce(sys)
        assert rom.system.mass is not None
        res = simulate(rom.system, step_source(0.2), 3.0, 0.01)
        assert np.isfinite(res.states).all()
        full = simulate(sys, step_source(0.2), 3.0, 0.01)
        scale = np.abs(full.outputs).max()
        rom_out = rom.system.observe(res.states)
        # compare first observed coordinate (output = identity here)
        assert np.abs(
            full.states @ sys.output.T - res.states @ rom.system.output.T
        ).max() < 0.05 * scale
