"""Tests for HSV-based automatic order selection (paper §4, bullet 1)."""

import numpy as np
import pytest

from repro.mor import realization_hankel_values, suggest_orders
from repro.volterra import associated_h1, associated_h2
from repro.systems import QLDAE


@pytest.fixture
def rng():
    return np.random.default_rng(151)


class TestRealizationHankelValues:
    def test_h1_hsv_matches_dense(self, small_qldae):
        """For H1 the surrogate HSVs should approximate the dense ones."""
        r1 = associated_h1(small_qldae)
        approx = realization_hankel_values(r1, probe=5)
        from repro.systems import StateSpace

        dense = StateSpace(
            small_qldae.g1, small_qldae.b, np.eye(5)
        ).hankel_singular_values()
        # leading values agree to a few percent
        k = min(3, len(approx), len(dense))
        assert np.allclose(approx[:k], dense[:k], rtol=0.05)

    def test_h2_values_positive_decreasing(self, small_qldae):
        r2 = associated_h2(small_qldae)
        hsv = realization_hankel_values(r2, probe=4)
        assert np.all(hsv >= 0)
        assert np.all(np.diff(hsv) <= 1e-12)


class TestSuggestOrders:
    def test_returns_triple_and_hsvs(self, small_qldae):
        orders, hsvs = suggest_orders(small_qldae, probe=4)
        assert len(orders) == 3
        assert orders[0] >= 1
        assert set(hsvs) == {"H1", "H2", "H3"}

    def test_weak_nonlinearity_gets_fewer_moments(self, rng):
        """A nearly-linear system should be assigned q2, q3 << q1."""
        n = 5
        g1 = -1.2 * np.eye(n) + 0.2 * rng.standard_normal((n, n))
        b = rng.standard_normal(n)
        weak = QLDAE(g1, b, g2=1e-8 * rng.standard_normal((n, n * n)))
        orders, _ = suggest_orders(weak, probe=4, tol=1e-4)
        assert orders[0] >= 1
        assert orders[1] == 0
        assert orders[2] == 0

    def test_linear_system(self, rng):
        sys = QLDAE(-np.eye(4), np.ones(4))
        orders, hsvs = suggest_orders(sys, probe=3)
        assert orders[1] == 0 and orders[2] == 0
        assert "H2" not in hsvs

    def test_suggested_orders_give_accurate_rom(self, small_qldae):
        from repro.mor import AssociatedTransformMOR
        from repro.simulation import simulate, sine_source
        from repro.analysis import max_relative_error

        orders, _ = suggest_orders(small_qldae, probe=5, tol=1e-6)
        rom = AssociatedTransformMOR(orders=orders).reduce(small_qldae)
        u = sine_source(0.2, 0.4)
        full = simulate(small_qldae, u, 6.0, 0.01)
        red = simulate(rom.system, u, 6.0, 0.01)
        assert max_relative_error(full.output(0), red.output(0)) < 1e-2
