#!/usr/bin/env python
"""Fault-tolerance overhead: checkpointing, crash/resume, and spill.

Measures, on the sep-healthy sparse quadratic ladder at circuit scale:

* **checkpoint overhead** — the same ``orders=(3, 2, 1)`` decoupled
  reduction cold vs with stage-boundary checkpointing (block payloads +
  solver snapshots + durable manifest rewrites).  The acceptance budget
  is <= 10% overhead.
* **resume time** — a build crashed at its second commit resumed from
  the checkpoint, with bit-identity of the resumed basis asserted
  against the cold run (SHA-256 of the basis bytes).
* **memory-budget spill** — the same reduction under a deliberately
  tiny ``repro.memory`` budget, so every basis block and the Π left
  factor go to disk-backed memory maps and the solver streams in
  budget-derived row blocks; the basis is asserted to match the cold
  run to <= 1e-10 (blocking reorders summations, so exact bit-identity
  only holds when the derived block covers all of n), and the traced
  allocation peak of the spill run is recorded.

Usage::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py [n_states]

Each invocation **appends** one run entry to the keyed list in
``benchmarks/BENCH_sweep.json`` (see ``perf_log.py``).  Set
``REPRO_BENCH_QUICK=1`` to shrink the case for CI smoke.
"""

import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np  # noqa: E402

from benchmarks.perf_log import append_run, peak_memory, traced_peak  # noqa: E402
from repro import memory  # noqa: E402
from repro.checkpoint import JobState  # noqa: E402
from repro.circuits.examples import quadratic_rc_ladder_netlist  # noqa: E402
from repro.errors import FaultInjected  # noqa: E402
from repro.mor.assoc import AssociatedTransformMOR  # noqa: E402
from repro.serialize import array_digest  # noqa: E402
from repro.testing import faults  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

DEFAULT_N = 20000


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def fresh_system(n_nodes):
    """New system object per run: the workspace is memoized on it."""
    net = quadratic_rc_ladder_netlist(
        n_nodes, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=8
    )
    return net.compile(sparse=True)


def make_reducer():
    return AssociatedTransformMOR(orders=(3, 2, 1), strategy="decoupled")


def _timed(fn):
    t0w, t0c = time.perf_counter(), time.process_time()
    result = fn()
    return result, time.perf_counter() - t0w, time.process_time() - t0c


def run_case(n_nodes, workdir, repeats=2):
    ckdir = Path(workdir) / "ck"

    # Interleave cold and checkpointed runs and keep the best of each:
    # on shared hosts the run-to-run wall noise otherwise dwarfs the
    # few-percent overhead this benchmark exists to measure.
    cold_walls, cold_cpus, ck_walls, ck_cpus = [], [], [], []
    digest = stages = None
    for _ in range(max(1, repeats)):
        rom_cold, wall, cpu = _timed(
            lambda: make_reducer().reduce(fresh_system(n_nodes))
        )
        cold_walls.append(wall)
        cold_cpus.append(cpu)
        digest = array_digest(rom_cold.basis)
        basis_cold = np.array(rom_cold.basis)
        shutil.rmtree(ckdir, ignore_errors=True)
        rom_ck, wall, cpu = _timed(
            lambda: make_reducer().reduce(
                fresh_system(n_nodes), checkpoint=JobState(ckdir)
            )
        )
        ck_walls.append(wall)
        ck_cpus.append(cpu)
        assert array_digest(rom_ck.basis) == digest, (
            "checkpointing perturbed the basis"
        )
        stages = rom_ck.details["checkpoint"]["stages_committed"]
        shutil.rmtree(ckdir)
    cold_s, checkpointed_s = min(cold_walls), min(ck_walls)
    cold_cpu_s, checkpointed_cpu_s = min(cold_cpus), min(ck_cpus)

    # crash at the second commit, then resume from the checkpoint
    faults.configure("checkpoint.before_commit:2:raise")
    t0 = time.perf_counter()
    try:
        make_reducer().reduce(fresh_system(n_nodes), checkpoint=JobState(ckdir))
        raise AssertionError("fault did not fire")
    except FaultInjected:
        pass
    crashed_s = time.perf_counter() - t0
    faults.configure(None)
    t0 = time.perf_counter()
    rom_resumed = make_reducer().reduce(
        fresh_system(n_nodes), checkpoint=JobState(ckdir)
    )
    resume_s = time.perf_counter() - t0
    assert array_digest(rom_resumed.basis) == digest, "resume not identical"
    resumed_info = rom_resumed.details["checkpoint"]
    shutil.rmtree(ckdir)

    # tiny budget: basis blocks + Pi left factor spill to memmaps, and
    # the budget-derived row blocking restructures (but must not
    # perturb beyond roundoff) the solver arithmetic
    with memory.limit("1M", spill_dir=Path(workdir) / "spill") as budget:
        t0 = time.perf_counter()
        rom_spill, spill_traced_peak = traced_peak(
            lambda: make_reducer().reduce(fresh_system(n_nodes))
        )
        spill_s = time.perf_counter() - t0
        spill_dev = float(
            np.abs(np.asarray(rom_spill.basis) - basis_cold).max()
        )
        assert spill_dev <= 1e-10, (
            f"spill/blocked basis deviates by {spill_dev:.3e}"
        )
        spill_stats = budget.stats()

    return {
        "n": n_nodes,
        "orders": [3, 2, 1],
        "strategy": "decoupled",
        "basis_sha256": digest,
        "cold_s": cold_s,
        "checkpointed_s": checkpointed_s,
        "checkpoint_overhead": checkpointed_s / cold_s - 1.0,
        "cold_cpu_s": cold_cpu_s,
        "checkpointed_cpu_s": checkpointed_cpu_s,
        "checkpoint_cpu_overhead": checkpointed_cpu_s / cold_cpu_s - 1.0,
        "stages_committed": stages,
        "crashed_s": crashed_s,
        "resume_s": resume_s,
        "resume_loaded": resumed_info["loaded"],
        "resume_computed": resumed_info["computed"],
        "spill_s": spill_s,
        "spill_overhead": spill_s / cold_s - 1.0,
        "spilled_blocks": spill_stats["spilled_blocks"],
        "spilled_mb": spill_stats["spilled_bytes"] / 1e6,
        "spill_max_abs_dev": spill_dev,
        "spill_tracemalloc_peak_mb": spill_traced_peak / 1e6,
        "peak_memory": peak_memory(),
    }


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_N
    if _quick():
        n = min(n, 512)
    results = {
        "benchmark": "checkpoint",
        "meta": {
            "generated_unix": time.time(),
            "quick_scale": _quick(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    print(f"fault-tolerant (3,2,1) decoupled NMOR (n = {n}) ...")
    workdir = tempfile.mkdtemp(prefix="repro-bench-ck-")
    try:
        results["fault_tolerance"] = run_case(
            n, workdir, repeats=1 if _quick() else 2
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    case = results["fault_tolerance"]
    print(
        "  cold {cold_s:.2f}s -> checkpointed {checkpointed_s:.2f}s "
        "({checkpoint_overhead:+.1%} wall, {checkpoint_cpu_overhead:+.1%} "
        "cpu, {stages_committed} stages)\n"
        "  crash@2nd-commit {crashed_s:.2f}s -> resume {resume_s:.2f}s "
        "(loaded {resume_loaded}, computed {resume_computed}, "
        "bit-identical)\n"
        "  1M-budget spill {spill_s:.2f}s ({spill_overhead:+.1%}, "
        "{spilled_blocks} blocks, {spilled_mb:.1f} MB, "
        "max dev {spill_max_abs_dev:.1e}, traced peak "
        "{spill_tracemalloc_peak_mb:.1f} MB)"
        .format(**case)
    )
    count = append_run(OUT_PATH, results)
    print(f"appended run {count} to {OUT_PATH}")


if __name__ == "__main__":
    main()
