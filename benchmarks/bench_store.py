#!/usr/bin/env python
"""Serving benchmark: warm ModelStore query vs cold reduce-and-sweep.

The whole point of the artifact layer is the paper's offline/online
split across *processes*: pay for the reduction once, then serve every
later distortion query from disk.  This bench measures exactly that on
the circuit-scale sparse ladder:

* **cold** — empty store: ``run_pipeline`` compiles the netlist, runs
  the full ``orders=(3, 2, 1)`` decoupled NMOR (low-rank Π, matrix-free
  chains), writes the artifact, then answers the HD2/HD3 sweep on the
  ROM;
* **warm** — a fresh :class:`~repro.store.ModelStore` handle on the
  same directory (as a new serving process would open): the reduction
  is a content-addressed disk hit and only the small-ROM sweep runs.

Warm and cold answers must agree to 1e-12 — the artifact round-trip is
bit-faithful on the kernel-defining matrices.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py [n_states]

Appends one run entry to ``benchmarks/BENCH_sweep.json`` (see
``perf_log.py``).  ``REPRO_BENCH_QUICK=1`` shrinks the circuit for CI
smoke.
"""

import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.perf_log import append_run  # noqa: E402
from repro.circuits.examples import quadratic_rc_ladder_netlist  # noqa: E402
from repro.pipeline import run_pipeline  # noqa: E402
from repro.store import ModelStore  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

DEFAULT_N = 1024
SWEEP = {"start": 0.05, "stop": 0.5, "points": 8, "amplitude": 0.05}
REDUCE = {"orders": (3, 2, 1), "strategy": "decoupled"}


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def make_netlist(n_nodes):
    """Sep-healthy low-rank-G2 ladder (the lifted-sparse bench circuit)."""
    return quadratic_rc_ladder_netlist(
        n_nodes, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=8
    )


def run_store_case(n_nodes=DEFAULT_N, store_root=None):
    """Cold reduce-and-sweep vs warm-store query on one circuit.

    Returns the timing/fidelity record appended to the perf log.  Each
    phase opens its *own* ``ModelStore`` handle on the shared directory,
    mimicking separate serving processes.
    """
    net = make_netlist(n_nodes)
    owns_root = store_root is None
    root = store_root or tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        t0 = time.perf_counter()
        cold = run_pipeline(
            net, reduce=REDUCE, sweep=SWEEP,
            store=ModelStore(root), sparse=True,
        )
        cold_s = time.perf_counter() - t0
        assert cold.store_hit is False

        t0 = time.perf_counter()
        warm = run_pipeline(
            net, reduce=REDUCE, sweep=SWEEP,
            store=ModelStore(root), sparse=True,
        )
        warm_s = time.perf_counter() - t0
        assert warm.store_hit is True
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)

    agreement = float(
        max(
            np.abs(warm.sweep["hd2"] - cold.sweep["hd2"]).max(),
            np.abs(warm.sweep["hd3"] - cold.sweep["hd3"]).max(),
        )
    )
    return {
        "n_states": int(cold.system_info["n_states"]),
        "sparse": bool(cold.system_info["sparse"]),
        "orders": list(REDUCE["orders"]),
        "strategy": REDUCE["strategy"],
        "sweep_points": int(SWEEP["points"]),
        "rom_order": int(cold.rom.order),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "cold_reduce_s": cold.reduce_time,
        "warm_reduce_s": warm.reduce_time,
        "max_abs_disagreement": agreement,
    }


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------


def test_warm_store_speedup():
    from repro.analysis import format_table

    n = 256 if _quick() else DEFAULT_N
    result = run_store_case(n_nodes=n)
    print()
    print(format_table(
        ["quantity", "value"],
        [[k, v] for k, v in result.items()],
        title=f"BENCH store | sparse ladder n={result['n_states']}",
    ))
    assert result["max_abs_disagreement"] < 1e-12
    assert result["speedup"] > 5.0, (
        f"warm store query only {result['speedup']:.2f}x faster"
    )


def main():
    n = DEFAULT_N
    if len(sys.argv) > 1:
        n = int(sys.argv[1])
    if _quick() and n == DEFAULT_N:
        n = 256
    print(f"cold vs warm store serving on the sparse ladder (n={n}) ...")
    result = run_store_case(n_nodes=n)
    print(
        "  cold {cold_s:.3f}s -> warm {warm_s:.3f}s ({speedup:.1f}x, "
        "max |Δ| {max_abs_disagreement:.2e})".format(**result)
    )
    run = {
        "meta": {
            "bench": "bench_store",
            "generated_unix": time.time(),
            "quick_scale": _quick(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "warm_store_serving": result,
    }
    count = append_run(OUT_PATH, run)
    print(f"appended run {count} to {OUT_PATH}")


if __name__ == "__main__":
    main()
