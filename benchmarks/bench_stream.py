#!/usr/bin/env python
"""Blockwise streaming at circuit scale: parity, peak RSS, and the
enforced-limit demonstration.

Three legs on the sep-healthy sparse quadratic ladder:

* **parity** — the n = 2048 decoupled ``orders=(3, 2, 1)`` basis built
  with a forced 500-row block vs unblocked: max deviation must be
  <= 1e-10 (blocking only reorders summations), and ``max_block >= n``
  must reproduce the unblocked basis bit-identically.
* **scale** — the n = 1e5 reduction in a subprocess under a 256 MB
  ``repro.memory`` budget (streaming block derived from it), recording
  wall time, ``ru_maxrss``, and spill traffic, and checking the peak
  against the resident-set model: interpreter + system base, the
  shift-cached sparse LUs (O(n) each), and a couple of factored
  ``n x r^2`` tiles — O(n * r^2) total, never O(n^2).  The peak must
  stay within 1.5x of the model.
* **enforced limit** — when a writable cgroup memory controller is
  available, both builds run under a hard 2 GiB limit: the streamed
  build must complete (its dirty tile pages are reclaimable file
  cache) and the unstreamed build must be OOM-killed (its ~2.5 GB
  working set is all anonymous).  This is the acceptance contrast:
  the streamed core finishes under a budget the unstreamed core
  cannot.  Skipped (and recorded as skipped) where cgroups are not
  writable.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py [n_states]

Each invocation **appends** one run entry to the keyed list in
``benchmarks/BENCH_sweep.json`` (see ``perf_log.py``).  Set
``REPRO_BENCH_QUICK=1`` to shrink the cases for CI smoke (the cgroup
leg is skipped in quick mode).
"""

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.perf_log import append_run, peak_memory  # noqa: E402
from repro.circuits.examples import quadratic_rc_ladder_netlist  # noqa: E402
from repro.mor.assoc import AssociatedTransformMOR  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"
REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

DEFAULT_N = 100_000
CGROUP_ROOT = Path("/sys/fs/cgroup/memory")
CGROUP_NAME = "repro-bench-stream"
ENFORCED_LIMIT_BYTES = 2 * 1024**3

#: Resident-set model constants for the scale leg (see module
#: docstring).  The chain solves of a (3, 2, 1) decoupled build visit
#: ~64 distinct resolvent shifts, each cached as a sparse LU whose
#: fill on the RC-ladder sparsity measures ~224 bytes/row; at most a
#: couple of n x r^2 complex factored tiles are live at once.
MODEL_LU_SHIFTS = 64
MODEL_LU_BYTES_PER_ROW = 224
MODEL_LIVE_TILES = 2


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def fresh_system(n_nodes):
    net = quadratic_rc_ladder_netlist(
        n_nodes, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=8
    )
    return net.compile(sparse=True)


def make_reducer():
    return AssociatedTransformMOR(orders=(3, 2, 1), strategy="decoupled")


def run_parity_case(n_nodes, forced_block):
    unblocked = np.array(
        make_reducer().reduce(fresh_system(n_nodes)).basis
    )
    t0 = time.perf_counter()
    blocked = make_reducer().reduce(
        fresh_system(n_nodes), max_block=forced_block
    )
    blocked_s = time.perf_counter() - t0
    dev = float(np.abs(np.asarray(blocked.basis) - unblocked).max())
    assert dev <= 1e-10, f"blocked basis deviates by {dev:.3e}"
    whole = make_reducer().reduce(
        fresh_system(n_nodes), max_block=n_nodes + 1
    )
    assert np.array_equal(np.asarray(whole.basis), unblocked), (
        "max_block >= n must be bit-identical to the unblocked build"
    )
    return {
        "n": n_nodes,
        "forced_block": forced_block,
        "blocked_s": blocked_s,
        "max_abs_dev": dev,
        "whole_block_bit_identical": True,
    }


_CHILD = r"""
import json, os, resource, sys, tempfile, time
cgroup = sys.argv[1]
if cgroup:
    with open(os.path.join(cgroup, "cgroup.procs"), "w") as fh:
        fh.write(str(os.getpid()))
mode, n, budget = sys.argv[2], int(sys.argv[3]), sys.argv[4]
from repro import memory
from repro.circuits.examples import quadratic_rc_ladder_netlist
from repro.mor.assoc import AssociatedTransformMOR
net = quadratic_rc_ladder_netlist(
    n, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=8
)
system = net.compile(sparse=True)
mor = AssociatedTransformMOR(orders=(3, 2, 1), strategy="decoupled")
rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
t0 = time.perf_counter()
if mode == "streamed":
    with memory.limit(budget, spill_dir=tempfile.mkdtemp()) as b:
        rom = mor.reduce(system)
        stats = b.stats()
else:
    stats = None
    rom = mor.reduce(system, max_block=n)
elapsed = time.perf_counter() - t0
ws = system._associated_workspace
print(json.dumps({
    "ok": True,
    "elapsed_s": elapsed,
    "rss_before_bytes": rss_before,
    "ru_maxrss_bytes": resource.getrusage(
        resource.RUSAGE_SELF
    ).ru_maxrss * 1024,
    "rom_order": rom.system.n_states,
    "pi_rank": ws.pi.rank,
    "stats": stats,
}))
"""


def _run_child(mode, n_nodes, budget, cgroup=""):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, cgroup, mode, str(n_nodes), budget],
        capture_output=True, text=True, env=env,
    )
    payload = None
    if result.returncode == 0:
        payload = json.loads(result.stdout.strip().splitlines()[-1])
    return result.returncode, payload, result.stderr


def run_scale_case(n_nodes, budget):
    code, payload, err = _run_child("streamed", n_nodes, budget)
    if code != 0:
        raise RuntimeError(f"streamed scale run failed ({code}):\n{err}")
    r = payload["pi_rank"]
    model_bytes = (
        payload["rss_before_bytes"]
        + MODEL_LU_SHIFTS * MODEL_LU_BYTES_PER_ROW * n_nodes
        + MODEL_LIVE_TILES * n_nodes * 16 * r * r
    )
    ratio = payload["ru_maxrss_bytes"] / model_bytes
    # The model is asymptotic: at small (quick-mode) n the interpreter
    # and solver base dwarf the O(n) terms, so only hold the line at
    # genuine scale.
    if n_nodes >= 50_000:
        assert ratio <= 1.5, (
            f"peak RSS {payload['ru_maxrss_bytes'] / 1e6:.0f} MB "
            f"exceeds 1.5x the O(n*r^2) resident model "
            f"({model_bytes / 1e6:.0f} MB)"
        )
    return {
        "n": n_nodes,
        "memory_budget": budget,
        "elapsed_s": payload["elapsed_s"],
        "rom_order": payload["rom_order"],
        "pi_rank": r,
        "rss_before_mb": payload["rss_before_bytes"] / 1e6,
        "peak_rss_mb": payload["ru_maxrss_bytes"] / 1e6,
        "model_mb": model_bytes / 1e6,
        "peak_over_model": ratio,
        "spilled_blocks": payload["stats"]["spilled_blocks"],
        "spilled_mb": payload["stats"]["spilled_bytes"] / 1e6,
    }


def _cgroup_setup(limit_bytes):
    """Create the bench cgroup; None when the controller is unusable."""
    cg = CGROUP_ROOT / CGROUP_NAME
    try:
        cg.mkdir(exist_ok=True)
        (cg / "memory.limit_in_bytes").write_text(str(limit_bytes))
    except OSError:
        return None
    return cg


def _cgroup_teardown(cg):
    try:
        os.rmdir(cg)
    except OSError:
        pass


def run_enforced_limit_case(n_nodes, budget, limit_bytes):
    cg = _cgroup_setup(limit_bytes)
    if cg is None:
        return {"skipped": "cgroup memory controller not writable"}
    try:
        code_s, payload, _ = _run_child(
            "streamed", n_nodes, budget, cgroup=str(cg)
        )
        assert code_s == 0, (
            f"streamed build died (rc {code_s}) under the "
            f"{limit_bytes / 1e9:.1f} GB limit it exists to fit"
        )
        code_u, _, _ = _run_child(
            "unstreamed", n_nodes, budget, cgroup=str(cg)
        )
        assert code_u == -9, (
            f"unstreamed build survived (rc {code_u}) a limit chosen "
            "below its working set — the contrast is gone, re-calibrate"
        )
    finally:
        _cgroup_teardown(cg)
    return {
        "n": n_nodes,
        "limit_bytes": limit_bytes,
        "memory_budget": budget,
        "streamed_rc": code_s,
        "streamed_s": payload["elapsed_s"],
        "streamed_peak_rss_mb": payload["ru_maxrss_bytes"] / 1e6,
        "unstreamed_rc": code_u,
        "unstreamed_oom_killed": True,
    }


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_N
    quick = _quick()
    if quick:
        n = min(n, 8192)
    results = {
        "benchmark": "stream",
        "meta": {
            "generated_unix": time.time(),
            "quick_scale": quick,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }

    parity_n, forced = (512, 100) if quick else (2048, 500)
    print(f"blocked vs unblocked parity (n = {parity_n}, "
          f"max_block = {forced}) ...")
    results["parity"] = run_parity_case(parity_n, forced)
    print("  max dev {max_abs_dev:.2e} (<= 1e-10), whole-block build "
          "bit-identical, blocked build {blocked_s:.2f}s"
          .format(**results["parity"]))

    budget = "64m" if quick else "256m"
    print(f"streamed reduction at scale (n = {n}, budget {budget}) ...")
    results["scale"] = run_scale_case(n, budget)
    print("  {elapsed_s:.1f}s, ROM order {rom_order}, peak RSS "
          "{peak_rss_mb:.0f} MB = {peak_over_model:.2f}x of the "
          "{model_mb:.0f} MB O(n*r^2) model, {spilled_blocks} spilled "
          "blocks ({spilled_mb:.0f} MB)".format(**results["scale"]))

    if quick:
        results["enforced_limit"] = {"skipped": "quick mode"}
        print("enforced-limit contrast skipped (quick mode)")
    else:
        print(f"enforced-limit contrast (cgroup, "
              f"{ENFORCED_LIMIT_BYTES / 2**30:.0f} GiB) ...")
        results["enforced_limit"] = run_enforced_limit_case(
            n, budget, ENFORCED_LIMIT_BYTES
        )
        if "skipped" in results["enforced_limit"]:
            print("  skipped: " + results["enforced_limit"]["skipped"])
        else:
            print("  streamed completed in {streamed_s:.1f}s at "
                  "{streamed_peak_rss_mb:.0f} MB peak; unstreamed "
                  "OOM-killed (rc {unstreamed_rc})"
                  .format(**results["enforced_limit"]))

    results["peak_memory"] = peak_memory()
    count = append_run(OUT_PATH, results)
    print(f"appended run {count} to {OUT_PATH}")


if __name__ == "__main__":
    main()
