"""Figure 5 — ZnO varistor surge-protection circuit (cubic ODE).

Paper §3.4: a 102-state ODE with a cubic Kronecker term, hit by a
9.8 kV surge and reduced to order 8 by the proposed method.  Regenerates
Fig. 5(b): the input surge and the clamped output voltage, full model vs
ROM, plus a quantification of how hard the (strongly nonlinear) varistor
clamp is working.
"""

import numpy as np
import pytest

from repro.analysis import (
    format_table,
    max_relative_error,
    series_summary,
)
from repro.circuits import varistor_surge_protector
from repro.mor import AssociatedTransformMOR
from repro.simulation import simulate, surge_source
from repro.systems import CubicODE

from .conftest import paper_scale

N_STATES = 102 if paper_scale() else 30
# The surge's fast rise excites mid-band dynamics, so we expand at DC
# plus one imaginary point (the paper's §4 notes multipoint expansion is
# "particularly straightforward" in the associated-transform framework).
ORDERS = (2, 0, 1)
POINTS = (0.0, 2.0j)
T_END, DT = 30.0, 0.02


@pytest.fixture(scope="module")
def system():
    # Keep the mass form: the reducers project (VᵀMV, VᵀG1V, ...) by
    # congruence, preserving the passive structure and ROM stability.
    return varistor_surge_protector(n_states=N_STATES)


def test_fig5_surge_response(system, benchmark):
    reducer = AssociatedTransformMOR(orders=ORDERS, expansion_points=POINTS)
    rom = benchmark.pedantic(
        lambda: reducer.reduce(system), rounds=1, iterations=1
    )
    surge = surge_source(amplitude=9.8e3, tau_rise=0.5, tau_fall=5.0)
    full = simulate(system, surge, T_END, DT)
    red = simulate(rom.system, surge, T_END, DT)
    linear = CubicODE(
        system.g1, system.b, g3=None, mass=system.mass,
        output=system.output,
    )
    lin = simulate(linear, surge, T_END, DT)

    err = max_relative_error(full.output(0), red.output(0))
    clamp = 1.0 - np.abs(full.output(0)).max() / max(
        np.abs(lin.output(0)).max(), 1e-12
    )
    print()
    print("=" * 70)
    print(f"FIG 5 | ZnO varistor surge protector | {system.n_states} "
          "states (paper: 102), cubic Kronecker nonlinearity")
    print("=" * 70)
    print(series_summary(
        "Fig5(b) input surge [V]", full.times,
        np.array([surge(t) for t in full.times]),
    ))
    print(series_summary("Fig5(b) output original", full.times,
                         full.output(0)))
    print(series_summary("Fig5(b) output ROM     ", red.times,
                         red.output(0)))
    print(format_table(
        ["quantity", "paper", "measured"],
        [
            ["full order", 102, system.n_states],
            ["ROM order", 8, rom.order],
            ["input peak [V]", "9.8e3", 9.8e3],
            ["varistor peak clamping", "(qualitative)", f"{clamp:.1%}"],
            ["max rel err", '"close match"', err],
        ],
        title="Fig. 5 summary",
    ))
    assert rom.order <= 10
    assert err < 0.12, "Fig-5 ROM accuracy regressed"
    assert np.isfinite(red.states).all()
