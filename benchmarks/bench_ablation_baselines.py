"""Ablation — baseline landscape: proposed vs NORM vs Carleman vs BT.

DESIGN.md abl4 (extension).  Positions the paper's method among the
classical alternatives on one weakly nonlinear workload:

* **proposed** — associated-transform moment matching (this paper),
* **NORM** — multivariate moment matching (the paper's baseline),
* **Carleman + linear MOR** — bilinearize to n + n² states, then reduce
  the *linear part* by Krylov (the pre-QLMOR route; note its state
  explosion is exactly what the associated transform avoids),
* **balanced truncation of the linear part only** — what you lose by
  ignoring the nonlinearity altogether.

Reported: ROM order, transient error, build time.
"""

import time

import numpy as np
import pytest

from repro.analysis import format_table, max_relative_error
from repro.circuits import quadratic_rc_ladder
from repro.mor import (
    AssociatedTransformMOR,
    NORMReducer,
    balanced_truncation,
)
from repro.simulation import simulate, step_source
from repro.systems import QLDAE, StateSpace, carleman_bilinearize

from .conftest import paper_scale

N_NODES = 50 if paper_scale() else 14
ORDERS = (6, 3, 0)
T_END, DT = 20.0, 0.02
AMP = 0.2


@pytest.fixture(scope="module")
def system():
    return quadratic_rc_ladder(n_nodes=N_NODES).to_explicit()


@pytest.fixture(scope="module")
def full_transient(system):
    return simulate(system, step_source(AMP), T_END, DT)


def test_baseline_landscape(system, full_transient, benchmark):
    u = step_source(AMP)
    ref = full_transient.output(0)
    rows = []

    t0 = time.perf_counter()
    rom_a = AssociatedTransformMOR(orders=ORDERS).reduce(system)
    t_a = time.perf_counter() - t0
    red = simulate(rom_a.system, u, T_END, DT)
    rows.append(["proposed (assoc. transform)", rom_a.order,
                 max_relative_error(ref, red.output(0)), t_a])

    t0 = time.perf_counter()
    rom_n = NORMReducer(orders=ORDERS).reduce(system)
    t_n = time.perf_counter() - t0
    red = simulate(rom_n.system, u, T_END, DT)
    rows.append(["NORM", rom_n.order,
                 max_relative_error(ref, red.output(0)), t_n])

    # Carleman: bilinearize, then Krylov-reduce the bilinear system's
    # linear part and project the N matrix along.
    t0 = time.perf_counter()
    carl = carleman_bilinearize(system)
    from repro.mor import krylov_basis

    v = krylov_basis(carl.a, carl.b, sum(ORDERS))
    from repro.systems import BilinearSystem

    carl_rom = BilinearSystem(
        v.T @ carl.a @ v,
        [v.T @ n_i @ v for n_i in carl.n_mats],
        v.T @ carl.b,
        output=carl.output @ v,
    )
    t_c = time.perf_counter() - t0
    red = simulate(carl_rom, u, T_END, DT)
    rows.append([
        f"Carleman (n+n² = {carl.n_states}) + Krylov",
        carl_rom.n_states,
        max_relative_error(ref, red.output(0)),
        t_c,
    ])

    # Linear-only balanced truncation (ignores G2 entirely).
    t0 = time.perf_counter()
    bt = balanced_truncation(
        StateSpace(system.g1, system.b, system.output),
        order=rom_a.order,
    )
    t_b = time.perf_counter() - t0
    lin_rom = QLDAE(
        bt.system.a, bt.system.b, output=bt.system.c
    )
    red = simulate(lin_rom, u, T_END, DT)
    rows.append(["linear-only BT (no G2)", lin_rom.n_states,
                 max_relative_error(ref, red.output(0)), t_b])

    benchmark.pedantic(
        lambda: AssociatedTransformMOR(orders=ORDERS).reduce(system),
        rounds=1, iterations=1,
    )
    print()
    print("=" * 70)
    print(f"ABLATION 4 | baseline landscape on a {system.n_states}-state "
          "quadratic ladder")
    print("=" * 70)
    print(format_table(
        ["method", "ROM/model order", "max rel err", "build [s]"], rows
    ))
    err = {row[0].split(" ")[0]: row[2] for row in rows}
    # The nonlinear reducers must beat the linear-only ROM.
    assert err["proposed"] < err["linear-only"]
    assert err["NORM"] < err["linear-only"]
