#!/usr/bin/env python
"""Parametric multi-corner reduction vs per-corner cold pipelines.

One :func:`repro.pipeline.run_parametric` call reduces a whole ROM
family — a corner grid plus Monte-Carlo draws over a parameter-annotated
quadratic RC ladder — reusing work across corners through four tiers
(exact store dedup, residual-checked interpolation, warm-started
extended-Krylov, cold).  The baseline reduces every grid corner with an
independent cold :func:`~repro.pipeline.run_pipeline` call.  The bench
asserts the family is *cheap* (total speedup over the cold baseline)
and *right*: every corner served by an exact tier (dedup / warm / cold)
matches its cold reduction's distortion sweep to 1e-9, and interpolated
corners stay within the configured interpolation tolerance.

Usage::

    PYTHONPATH=src python benchmarks/bench_mc.py [n_states]

Each invocation **appends** one run entry (per-tier hit counts, corner
throughput, the fixed Monte-Carlo seed) to the keyed list in
``benchmarks/BENCH_sweep.json`` (see ``perf_log.py``).  The default
configuration is the full 8×8-corner grid with 256 draws at n = 1024 —
hours of cold baseline; set ``REPRO_BENCH_QUICK=1`` for a 4×4 grid with
16 draws at n = 64 (minutes, same assertions).
"""

import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.perf_log import append_run  # noqa: E402
from repro.circuits.examples import (  # noqa: E402
    quadratic_rc_ladder_netlist,
)
from repro.engine import get_executor  # noqa: E402
from repro.params import Parameter, ParameterGrid, materialize  # noqa: E402
from repro.pipeline import (  # noqa: E402
    _worst_rel_dev,
    run_parametric,
    run_pipeline,
)

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

DEFAULT_N = 1024
MC_SEED = 2012
INTERP_TOL = 1e-4
EXACT_TOL = 1e-9

REDUCE = {"orders": [3, 2, 1], "strategy": "decoupled"}


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def make_parametric_ladder(n_nodes):
    """The documented example circuit, annotated with two ranged axes."""
    net = quadratic_rc_ladder_netlist(n_nodes, quad_nodes=4)
    r_sites = tuple(
        i for i, dev in enumerate(net.devices) if hasattr(dev, "resistance")
    )
    g_sites = tuple(
        i for i, dev in enumerate(net.devices)
        if getattr(dev, "g2", 0.0) != 0.0
    )
    return net.with_params([
        Parameter("r_series", "resistance", r_sites, nominal=1.0,
                  low=0.9, high=1.15, sigma=0.03),
        Parameter("g_quad", "g2", g_sites, nominal=0.5,
                  low=0.4, high=0.6, sigma=0.05),
    ])


def run_mc_case(n_nodes=None):
    quick = _quick()
    if n_nodes is None:
        n_nodes = 64 if quick else DEFAULT_N
    axis_points = 4 if quick else 8
    draws = 16 if quick else 256
    net = make_parametric_ladder(n_nodes)
    sweep = {
        "start": 0.05, "stop": 0.5,
        "points": 13 if quick else 25, "amplitude": 0.1,
    }
    mc = {
        "grid_points": axis_points, "draws": draws, "seed": MC_SEED,
        "interp_tol": INTERP_TOL,
    }

    start = time.perf_counter()
    result = run_parametric(net, reduce=REDUCE, sweep=sweep, mc=mc,
                            sparse=True)
    parametric_s = time.perf_counter() - start
    corners = len(result.corners)

    # -- cold baseline: one independent run_pipeline per grid corner ------
    grid = ParameterGrid(net, axis_points)
    omegas = np.asarray(result.distributions["omegas"], dtype=float)
    cold_s = 0.0
    dev_exact = 0.0
    dev_interp = 0.0
    for record in result.corners:
        concrete = materialize(net, record["values"])
        start = time.perf_counter()
        cold = run_pipeline(concrete, reduce=REDUCE, sweep=sweep,
                            sparse=True)
        cold_s += time.perf_counter() - start
        report = cold.report()["sweep"]
        dev = max(
            _worst_rel_dev(record["hd2"], np.asarray(report["hd2"])),
            _worst_rel_dev(record["hd3"], np.asarray(report["hd3"])),
        )
        if record["tier"] == "interp":
            dev_interp = max(dev_interp, dev)
        else:
            dev_exact = max(dev_exact, dev)

    assert dev_exact <= EXACT_TOL, (
        f"exact-tier corner deviates {dev_exact:.3e} from cold "
        f"(> {EXACT_TOL})"
    )
    assert dev_interp <= INTERP_TOL, (
        f"interpolated corner deviates {dev_interp:.3e} from cold "
        f"(> {INTERP_TOL})"
    )
    speedup = cold_s / parametric_s
    assert speedup >= 5.0, (
        f"parametric family ran only {speedup:.2f}x faster than "
        f"{corners} cold pipelines"
    )
    return {
        "n_states": int(n_nodes),
        "grid_shape": list(grid.shape),
        "corners": corners,
        "draws": len(result.draws),
        "seed": MC_SEED,
        "interp_tol": INTERP_TOL,
        "parametric_s": parametric_s,
        "cold_baseline_s": cold_s,
        "speedup": speedup,
        "corners_per_sec": (corners + len(result.draws)) / parametric_s,
        "tiers": dict(result.tiers),
        "max_dev_exact_tiers": dev_exact,
        "max_dev_interp_tier": dev_interp,
        "sweep_points": int(omegas.size),
        "timings": {k: float(v) for k, v in result.timings.items()},
    }


def main(argv):
    n_nodes = int(argv[1]) if len(argv) > 1 else None
    case = run_mc_case(n_nodes)
    run = {
        "bench": "mc",
        "quick": _quick(),
        "backend": getattr(get_executor(), "backend_name", "serial"),
        "python": platform.python_version(),
        **case,
    }
    append_run(OUT_PATH, run)
    tiers = ", ".join(f"{k}={v}" for k, v in sorted(case["tiers"].items()))
    print(
        f"[bench_mc] n={case['n_states']} corners={case['corners']} "
        f"draws={case['draws']} seed={case['seed']}\n"
        f"  parametric {case['parametric_s']:.1f}s vs cold baseline "
        f"{case['cold_baseline_s']:.1f}s -> {case['speedup']:.1f}x\n"
        f"  tiers: {tiers}\n"
        f"  max dev: exact tiers {case['max_dev_exact_tiers']:.2e} "
        f"(<= {EXACT_TOL}), interp {case['max_dev_interp_tier']:.2e} "
        f"(<= {INTERP_TOL})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
