#!/usr/bin/env python
"""Solve-plan engine: serial vs thread-pool backend on the hot fan-outs.

Times the two acceptance workloads of the parallel engine —

* a multi-point **distortion sweep** on a circuit-sized sparse quadratic
  RC ladder (per-point H3 assemblies plus the batched H1/H2 grids), and
* a multipoint **decoupled-H2 basis build** (the paper's eq.-(18)
  independent Krylov chains) on a warm workspace, so the timed region is
  exactly the embarrassingly parallel chain work, not the shared Π /
  Schur setup both backends reuse —

once on the ``SerialExecutor`` (the default) and once on the selected
parallel backend (``--backend thread`` or ``--backend process``),
asserting parity ≤ 1e-10, and **appends** one entry to the keyed run
list in ``benchmarks/BENCH_sweep.json``.

A parallel backend only pays off when the host actually has cores: the
entry records ``cpu_count``, ``workers``, ``backend`` and the
multiprocessing ``start_method`` so the numbers are attributable to the
hardware they ran on.  On a single-core host the per-case ``speedup``
is recorded as ``None`` and ``scaling`` as ``"scheduler_noise"`` —
whatever ratio the timers produce there measures scheduler interleaving
(plus, for the process backend, pool spin-up), not scaling, and must
not be read as a regression.  On a ≥ 4-core host the expectation is
≥ 2× on both cases.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [workers] \
        [sweep_n_nodes] [basis_n_states] [--backend thread|process]

``REPRO_BENCH_QUICK=1`` shrinks both cases for CI smoke runs.
"""

import multiprocessing
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import repro.engine as engine  # noqa: E402
from benchmarks.perf_log import append_run  # noqa: E402
from repro.analysis.distortion import distortion_sweep  # noqa: E402
from repro.circuits.examples import (  # noqa: E402
    quadratic_rc_ladder_netlist,
)
from repro.mor import AssociatedTransformMOR  # noqa: E402
from repro.volterra.associated import AssociatedWorkspace  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

DEFAULT_WORKERS = 4
DEFAULT_BACKEND = "thread"
DEFAULT_SWEEP_NODES = 512
DEFAULT_BASIS_STATES = 192
SWEEP_POINTS = 50


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def _single_core():
    return (os.cpu_count() or 1) <= 1


def _label_scaling(case):
    """Replace the speedup with a scheduler-noise label on 1-core hosts."""
    if _single_core():
        case["speedup"] = None
        case["scaling"] = "scheduler_noise"
    else:
        case["scaling"] = "parallel"
    return case


def _reset_caches(system):
    """Drop the per-system memoized factorization layers (cold start)."""
    for attr in (
        "_resolvent_factory",
        "_volterra_evaluator",
        "_associated_workspace",
    ):
        try:
            setattr(system, attr, None)
        except AttributeError:
            pass


def run_parallel_sweep_case(workers, n_nodes=None, points=None,
                            backend=DEFAULT_BACKEND):
    """50-point distortion sweep: serial vs the parallel backend."""
    if n_nodes is None:
        n_nodes = 192 if _quick() else DEFAULT_SWEEP_NODES
    if points is None:
        points = 10 if _quick() else SWEEP_POINTS
    system = quadratic_rc_ladder_netlist(n_nodes).compile(sparse=True)
    omegas = np.linspace(0.05, 0.5, points)

    # Untimed warm-up: allocator, SuperLU setup, import-time lazy state.
    _reset_caches(system)
    engine.configure(workers=1)
    distortion_sweep(system, omegas, 0.5)

    _reset_caches(system)
    start = time.perf_counter()
    _, hd2_serial, hd3_serial = distortion_sweep(system, omegas, 0.5)
    serial_s = time.perf_counter() - start

    _reset_caches(system)
    with engine.using(workers=workers, backend=backend):
        start = time.perf_counter()
        _, hd2_par, hd3_par = distortion_sweep(system, omegas, 0.5)
        parallel_s = time.perf_counter() - start

    agreement = float(
        max(
            np.abs(hd2_serial - hd2_par).max(),
            np.abs(hd3_serial - hd3_par).max(),
        )
    )
    assert agreement <= 1e-10, f"parity violated: {agreement:.3e}"
    return _label_scaling({
        "n_states": int(system.n_states),
        "points": int(points),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "max_abs_disagreement": agreement,
    })


def run_parallel_basis_case(workers, n_states=None,
                            backend=DEFAULT_BACKEND):
    """Decoupled-H2 multipoint basis build: serial vs parallel backend.

    The workspace (Schur form, Π, Kronecker-sum solver) is warmed first
    — both backends share those one-time factorizations — so the timed
    region is the per-subsystem / per-expansion-point chain fan-out the
    engine actually parallelizes.
    """
    if n_states is None:
        n_states = 96 if _quick() else DEFAULT_BASIS_STATES
    system = quadratic_rc_ladder_netlist(n_states).compile(sparse=False)
    explicit = system.to_explicit()
    points = tuple(1j * w for w in np.linspace(0.0, 1.0, 6))
    reducer = AssociatedTransformMOR(
        orders=(3, 2, 0), expansion_points=points, strategy="decoupled"
    )

    workspace = AssociatedWorkspace.for_system(explicit)
    workspace.pi  # warm the shared eq.-(18) Sylvester solve

    # Untimed warm-up pass (same reasons as the sweep case).
    engine.configure(workers=1)
    reducer.build_basis(explicit, workspace)

    start = time.perf_counter()
    basis_serial, details = reducer.build_basis(explicit, workspace)
    serial_s = time.perf_counter() - start

    with engine.using(workers=workers, backend=backend):
        start = time.perf_counter()
        basis_par, _ = reducer.build_basis(explicit, workspace)
        parallel_s = time.perf_counter() - start

    agreement = float(np.abs(basis_serial - basis_par).max())
    assert agreement <= 1e-10, f"parity violated: {agreement:.3e}"
    return _label_scaling({
        "n_states": int(explicit.n_states),
        "expansion_points": len(points),
        "basis_vectors": int(basis_serial.shape[1]),
        "raw_vectors": int(details["raw_vectors"]),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "max_abs_disagreement": agreement,
    })


def _case_line(case, extra):
    ratio = case["serial_s"] / case["parallel_s"]
    scaling = (
        f"{ratio:.2f}x"
        if case["speedup"] is not None
        else f"{ratio:.2f}x ratio, scheduler noise (1 core)"
    )
    return (
        f"  serial {case['serial_s']:.3f}s -> parallel "
        f"{case['parallel_s']:.3f}s ({scaling} on n={case['n_states']}, "
        f"{extra}, agreement {case['max_abs_disagreement']:.2e})"
    )


def main():
    argv = sys.argv[1:]
    backend = DEFAULT_BACKEND
    if "--backend" in argv:
        at = argv.index("--backend")
        backend = argv[at + 1]
        del argv[at : at + 2]
    workers = int(argv[0]) if len(argv) > 0 else DEFAULT_WORKERS
    sweep_nodes = int(argv[1]) if len(argv) > 1 else None
    basis_states = int(argv[2]) if len(argv) > 2 else None
    results = {
        "meta": {
            "bench": "bench_parallel",
            "generated_unix": time.time(),
            "quick_scale": _quick(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "workers": workers,
            "backend": backend,
            "start_method": multiprocessing.get_start_method(),
        }
    }
    print(f"distortion sweep, serial vs {workers} {backend} workers ...")
    results["parallel_distortion_sweep"] = run_parallel_sweep_case(
        workers, n_nodes=sweep_nodes, backend=backend
    )
    case = results["parallel_distortion_sweep"]
    print(_case_line(case, f"{case['points']} points"))

    print(
        f"decoupled-H2 basis build, serial vs {workers} {backend} "
        "workers ..."
    )
    results["parallel_decoupled_basis"] = run_parallel_basis_case(
        workers, n_states=basis_states, backend=backend
    )
    case = results["parallel_decoupled_basis"]
    print(_case_line(case, f"{case['expansion_points']} points"))

    engine.configure(workers=1)
    count = append_run(OUT_PATH, results)
    print(f"appended run {count} to {OUT_PATH}")


if __name__ == "__main__":
    main()
