#!/usr/bin/env python
"""Serving benchmark: daemon throughput and the three reduce tiers.

The serving layer's claims are quantitative, so this bench measures
them on the circuit-scale sparse ladder:

* **tier latencies** — the same HD2/HD3 sweep answered with the
  reduction acquired from each tier: **cold** (empty store, full
  NMOR), **warm-disk** (fresh handle, content-addressed artifact load
  + ``to_explicit()`` rebuild per request), **hot-memory** (resident
  :class:`~repro.serve.HotROMCache` entry with its primed explicit
  system).  Hot must beat warm-disk — that gap *is* the reason the
  daemon exists over warm one-shot CLI calls.
* **coalescing** — ``K`` concurrent overlapping sweeps on one hot ROM,
  with the :class:`~repro.serve.SweepCoalescer` on vs off: union-grid
  solves vs ``K`` independent solves, bit-identical per-request
  results either way.
* **sustained throughput** — requests/s through the real HTTP front
  door (``ServeDaemon``) over keep-alive connections, all hot.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [n_states]

Appends one run entry to ``benchmarks/BENCH_sweep.json`` (see
``perf_log.py``).  ``REPRO_BENCH_QUICK=1`` shrinks the circuit and the
request counts for CI smoke.
"""

import http.client
import json
import os
import platform
import shutil
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.perf_log import append_run  # noqa: E402
from repro.serve import (  # noqa: E402
    ReduceRequest,
    ReproService,
    ServeDaemon,
    SweepRequest,
)

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

DEFAULT_N = 512
REDUCE = {"orders": [3, 2, 1], "strategy": "decoupled"}
SWEEP = {"start": 0.05, "stop": 0.5, "points": 8, "amplitude": 0.05}


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def ladder_spec(n_nodes):
    """The lifted-sparse bench circuit (sep-healthy low-rank G2)."""
    return {
        "generator": "quadratic_rc_ladder_netlist",
        "args": {"n_nodes": n_nodes, "r": 10.0, "g_leak": 1.0,
                 "g_quad": 0.5, "quad_nodes": 8},
        "compile": {"sparse": True},
    }


def _sweep_request(spec):
    return SweepRequest.from_payload(
        {"spec": spec, "reduce": REDUCE, "sweep": SWEEP}
    )


def bench_tiers(spec, root, repeats):
    """Median sweep latency with the reduction from each tier."""
    # Cold: empty store, the one genuinely expensive request.
    cold_service = ReproService(store=root, hot_capacity=8)
    t0 = time.perf_counter()
    cold = cold_service.handle(_sweep_request(spec))
    cold_s = time.perf_counter() - t0
    assert cold.served_from == "cold"

    # Warm-disk: hot cache disabled, so every request re-loads the
    # artifact from the store and rebuilds its explicit system — what a
    # cacheless daemon (or repeated one-shot CLI calls) would pay.
    disk_service = ReproService(store=root, hot_capacity=0)
    disk_times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        outcome = disk_service.handle(_sweep_request(spec))
        disk_times.append(time.perf_counter() - t0)
        assert outcome.served_from == "disk"

    # Hot-memory: resident artifact + primed explicit system.
    hot_service = ReproService(store=root, hot_capacity=8)
    hot_service.handle(_sweep_request(spec))  # admit to the hot cache
    hot_times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        outcome = hot_service.handle(_sweep_request(spec))
        hot_times.append(time.perf_counter() - t0)
        assert outcome.served_from == "hot"

    # All three tiers answer bit-identically.
    reference = cold.result.sweep
    for served in (disk_service, hot_service):
        check = served.handle(_sweep_request(spec)).result.sweep
        assert np.array_equal(check["hd2"], reference["hd2"])
        assert np.array_equal(check["hd3"], reference["hd3"])

    disk_s = statistics.median(disk_times)
    hot_s = statistics.median(hot_times)
    return {
        "cold_s": cold_s,
        "warm_disk_s": disk_s,
        "hot_memory_s": hot_s,
        "hot_vs_disk_speedup": disk_s / hot_s,
        "disk_vs_cold_speedup": cold_s / disk_s,
        "repeats": repeats,
    }


def bench_coalescing(spec, root, clients, rounds):
    """K concurrent overlapping sweeps, coalescer on vs off."""
    grids = [
        {"start": 0.05 + 0.01 * i, "stop": 0.5, "points": 8,
         "amplitude": 0.05}
        for i in range(clients)
    ]

    def run_burst(service):
        errors = []

        def client(grid):
            try:
                service.handle(SweepRequest.from_payload(
                    {"spec": spec, "reduce": REDUCE, "sweep": grid}
                ))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        t0 = time.perf_counter()
        for _ in range(rounds):
            threads = [
                threading.Thread(target=client, args=(grid,))
                for grid in grids
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        elapsed = time.perf_counter() - t0
        assert not errors, errors[0]
        return elapsed

    merged = ReproService(store=root, hot_capacity=8, coalesce=True)
    merged.handle(_sweep_request(spec))  # make the ROM hot
    merged_s = run_burst(merged)
    stats = merged.coalescer.stats()

    solo = ReproService(store=root, hot_capacity=8, coalesce=False)
    solo.handle(_sweep_request(spec))
    solo_s = run_burst(solo)

    return {
        "clients": clients,
        "rounds": rounds,
        "coalesced_s": merged_s,
        "uncoalesced_s": solo_s,
        "speedup": solo_s / merged_s,
        "flights": stats["flights"],
        "requests_merged_away": stats["coalesced"],
        "points_solved": stats["points_solved"],
    }


def bench_throughput(spec, root, requests):
    """Sustained hot-tier req/s over one HTTP keep-alive connection."""
    service = ReproService(store=root, hot_capacity=8)
    daemon = ServeDaemon(service, port=0, queue_limit=8)
    url = daemon.start_background()
    try:
        host, port = url.split("://", 1)[1].rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port), timeout=120)
        body = json.dumps(
            {"spec": spec, "reduce": REDUCE, "sweep": SWEEP}
        ).encode("utf-8")
        headers = {"Content-Type": "application/json"}

        def post():
            conn.request("POST", "/v1/sweep", body=body, headers=headers)
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200, payload
            return payload

        first = post()  # cold: builds + admits the ROM
        t0 = time.perf_counter()
        for _ in range(requests):
            served = post()
            assert served["reduction"]["served_from"] == "hot"
        elapsed = time.perf_counter() - t0
        assert served["sweep"]["hd2"] == first["sweep"]["hd2"]
        conn.close()
        snapshot = service.metrics.snapshot()
        return {
            "requests": requests,
            "elapsed_s": elapsed,
            "req_per_s": requests / elapsed,
            "p50_ms": snapshot["latency"]["sweep"]["p50_ms"],
            "p99_ms": snapshot["latency"]["sweep"]["p99_ms"],
        }
    finally:
        daemon.stop_background()


def run_serve_bench(n_nodes=DEFAULT_N):
    quick = _quick()
    repeats = 3 if quick else 7
    clients = 4 if quick else 8
    rounds = 2 if quick else 4
    requests = 10 if quick else 40

    spec = ladder_spec(n_nodes)
    root = tempfile.mkdtemp(prefix="repro-serve-bench-")
    try:
        tiers = bench_tiers(spec, root, repeats)
        coalescing = bench_coalescing(spec, root, clients, rounds)
        throughput = bench_throughput(spec, root, requests)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "n_nodes": n_nodes,
        "orders": list(REDUCE["orders"]),
        "strategy": REDUCE["strategy"],
        "sweep_points": int(SWEEP["points"]),
        "tiers": tiers,
        "coalescing": coalescing,
        "throughput": throughput,
    }


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------


def test_hot_tier_beats_warm_disk():
    from repro.analysis import format_table

    n = 96 if _quick() else DEFAULT_N
    result = run_serve_bench(n_nodes=n)
    tiers = result["tiers"]
    print()
    print(format_table(
        ["tier", "latency_s"],
        [["cold", tiers["cold_s"]],
         ["warm-disk", tiers["warm_disk_s"]],
         ["hot-memory", tiers["hot_memory_s"]]],
        title=f"BENCH serve | sparse ladder n={n}",
    ))
    assert tiers["hot_memory_s"] < tiers["warm_disk_s"], (
        "hot tier no faster than warm-disk: "
        f"{tiers['hot_memory_s']:.4f}s vs {tiers['warm_disk_s']:.4f}s"
    )
    assert tiers["warm_disk_s"] < tiers["cold_s"]
    assert result["coalescing"]["requests_merged_away"] > 0


def main():
    n = DEFAULT_N
    if len(sys.argv) > 1:
        n = int(sys.argv[1])
    if _quick() and n == DEFAULT_N:
        n = 96
    print(f"serving tiers / coalescing / throughput (n={n}) ...")
    result = run_serve_bench(n_nodes=n)
    tiers = result["tiers"]
    print(
        "  cold {cold_s:.3f}s | warm-disk {warm_disk_s:.4f}s | "
        "hot {hot_memory_s:.4f}s ({hot_vs_disk_speedup:.1f}x over disk)"
        .format(**tiers)
    )
    print(
        "  coalescing: {clients} clients x {rounds} rounds: "
        "{uncoalesced_s:.3f}s -> {coalesced_s:.3f}s "
        "({speedup:.2f}x, {requests_merged_away} merged)"
        .format(**result["coalescing"])
    )
    print(
        "  throughput: {req_per_s:.1f} req/s hot over keep-alive "
        "(p50 {p50_ms:.1f} ms, p99 {p99_ms:.1f} ms)"
        .format(**result["throughput"])
    )
    run = {
        "meta": {
            "bench": "bench_serve",
            "generated_unix": time.time(),
            "quick_scale": _quick(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "serve": result,
    }
    count = append_run(OUT_PATH, run)
    print(f"appended run {count} to {OUT_PATH}")


if __name__ == "__main__":
    main()
