#!/usr/bin/env python
"""Circuit-scale lifted H2/H3: low-rank Π + matrix-free chains vs dense.

Exercises the sparse lifted machinery end-to-end and records:

* low-rank Π (right-Galerkin on the sparse LU) vs the dense Schur
  Bartels–Stewart sweep at moderate n — residuals and wall-clock,
* full ``orders=(q1, q2, q3)`` decoupled NMOR on a sparse-compiled
  circuit at n ≫ 2000, which the dense Schur machinery cannot attempt
  (Π alone would be ``n × n²``),
* the streamed ``H3`` evaluator on a cubic (varistor) circuit at
  n ≥ 1000 — tracemalloc peak of a ``single_tone_distortion``, formerly
  a dense ``(n³, m³)`` accumulator (84 MB at n = 120, OOM by n ≈ 500).

Usage::

    PYTHONPATH=src python benchmarks/bench_lifted_sparse.py [n_states]

Each invocation **appends** one run entry to the keyed list in
``benchmarks/BENCH_sweep.json`` (see ``perf_log.py``).  Set
``REPRO_BENCH_QUICK=1`` to shrink the large-n cases for CI smoke.
"""

import os
import platform
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.perf_log import append_run, traced_peak  # noqa: E402
from repro.analysis.distortion import single_tone_distortion  # noqa: E402
from repro.circuits.examples import (  # noqa: E402
    quadratic_rc_ladder_netlist,
    varistor_surge_protector,
)
from repro.linalg.resolvent import ResolventFactory  # noqa: E402
from repro.linalg.sylvester import (  # noqa: E402
    LowRankKronSolver,
    pi_sylvester_residual,
    solve_pi_sylvester,
)
from repro.mor.assoc import AssociatedTransformMOR  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

DEFAULT_N = 2048


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def make_system(n_nodes, sparse):
    """Sep-healthy low-rank-G2 ladder (see the netlist docstring)."""
    net = quadratic_rc_ladder_netlist(
        n_nodes, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=8
    )
    return net.compile(sparse=sparse).to_explicit()


def run_pi_parity_case(n_nodes=200):
    """Dense Schur Π vs low-rank factored Π on the same circuit."""
    ssys = make_system(n_nodes, sparse=True)
    dsys = make_system(n_nodes, sparse=False)

    t0 = time.perf_counter()
    pi_dense = solve_pi_sylvester(dsys.g1, dsys.g2.toarray())
    dense_s = time.perf_counter() - t0

    factory = ResolventFactory.for_system(ssys)
    solver = LowRankKronSolver(
        ssys.g1,
        lambda s, r: -factory.solve(-s, np.asarray(r, complex)),
        lambda s, r: -factory.solve_transpose(-s, np.asarray(r, complex)),
    )
    t0 = time.perf_counter()
    fpi = solver.solve_pi(ssys.g2, tol=1e-9)
    lowrank_s = time.perf_counter() - t0

    g2_norm = fpi.rhs_norm
    return {
        "n": n_nodes,
        "dense_s": dense_s,
        "lowrank_s": lowrank_s,
        "speedup": dense_s / lowrank_s,
        "pi_rank": fpi.rank,
        "lowrank_rel_residual": fpi.residual / g2_norm,
        "dense_rel_residual": pi_sylvester_residual(
            dsys.g1, dsys.g2.toarray(), pi_dense
        ) / g2_norm,
        "max_entry_disagreement": float(
            np.abs(fpi.to_dense() - pi_dense).max() / np.abs(pi_dense).max()
        ),
    }


def run_full_order_mor_case(n_nodes=DEFAULT_N):
    """orders=(3, 2, 1) decoupled NMOR on the sparse-compiled circuit."""
    net = quadratic_rc_ladder_netlist(
        n_nodes, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=8
    )
    system = net.compile(sparse=True)
    mor = AssociatedTransformMOR(orders=(3, 2, 1), strategy="decoupled")
    t0 = time.perf_counter()
    rom, peak = traced_peak(lambda: mor.reduce(system))
    total_s = time.perf_counter() - t0
    return {
        "n": n_nodes,
        "orders": [3, 2, 1],
        "strategy": "decoupled",
        "rom_order": rom.system.n_states,
        "build_s": rom.build_time,
        "total_s": total_s,
        "peak_mb": peak / 1e6,
        "rom_linear_stable": rom.details["rom_linear_stable"],
    }


def run_h3_memory_case(n_states=1024):
    """Streamed H3 distortion on the cubic varistor circuit."""
    circ = varistor_surge_protector(n_states=n_states)
    system = circ.to_explicit()
    tracemalloc.start()
    t0 = time.perf_counter()
    res = single_tone_distortion(system, omega=0.7, amplitude=2.0)
    elapsed = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "n": n_states,
        "sparse": bool(circ.is_sparse),
        "hd3": float(res["hd3"]),
        "time_s": elapsed,
        "peak_mb": peak / 1e6,
    }


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_N
    if _quick():
        n = min(n, 512)
    results = {
        "benchmark": "lifted_sparse",
        "meta": {
            "generated_unix": time.time(),
            "quick_scale": _quick(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }

    parity_n = 128 if _quick() else 200
    print(f"low-rank vs dense Pi (n = {parity_n}) ...")
    results["pi_parity"] = run_pi_parity_case(parity_n)
    print(
        "  dense {dense_s:.2f}s -> low-rank {lowrank_s:.2f}s "
        "({speedup:.1f}x, rank {pi_rank}, rel residual "
        "{lowrank_rel_residual:.2e}, max disagreement "
        "{max_entry_disagreement:.2e})".format(**results["pi_parity"])
    )

    print(f"full-order decoupled NMOR, sparse (n = {n}) ...")
    results["full_order_mor"] = run_full_order_mor_case(n)
    print(
        "  orders (3,2,1) -> ROM order {rom_order} in {total_s:.2f}s "
        "(basis build {build_s:.2f}s, traced peak {peak_mb:.1f} MB)"
        .format(**results["full_order_mor"])
    )

    mem_n = 512 if _quick() else 1024
    print(f"streamed H3 distortion on the varistor circuit (n = {mem_n}) ...")
    results["h3_memory"] = run_h3_memory_case(mem_n)
    print(
        "  hd3 = {hd3:.3e} in {time_s:.2f}s, tracemalloc peak "
        "{peak_mb:.1f} MB".format(**results["h3_memory"])
    )

    count = append_run(OUT_PATH, results)
    print(f"appended run {count} to {OUT_PATH}")


if __name__ == "__main__":
    main()
