"""Table 1 — runtime comparison between the proposed method and NORM.

Paper Table 1 reports, for the §3.2 (transmission line, R^70) and §3.3
(RF receiver, R^173) examples:

    Arnoldi  (basis construction):  proposed SLOWER than NORM
                                    (bigger lifted matrix-vector work)
    ODE solve (transient):          proposed FASTEST, original slowest
                                    (§3.2: proposed saves 61% vs NORM's
                                     ROM; both far below the original)

This bench measures the same four quantities per example and prints a
Table-1-shaped comparison.  Absolute seconds differ from the 2012
hardware; the orderings and rough ratios are the reproduction target.
"""

import numpy as np
import pytest

from repro.analysis import format_table, max_relative_error, speedup
from repro.circuits import nonlinear_transmission_line, rf_receiver_chain
from repro.mor import AssociatedTransformMOR, NORMReducer
from repro.simulation import simulate, sine_source, stack_sources, step_source

from .conftest import paper_scale

ORDERS = (6, 3, 2)
EXPANSION = 0.5


def _measure(system, u_fn, t_end, dt, orders, s0):
    """Return the Table-1 rows for one example system."""
    reducer_a = AssociatedTransformMOR(
        orders=orders, expansion_points=(s0,)
    )
    rom_a = reducer_a.reduce(system)
    reducer_n = NORMReducer(orders=orders, s0=s0)
    rom_n = reducer_n.reduce(system)

    full = simulate(system, u_fn, t_end, dt)
    red_a = simulate(rom_a.system, u_fn, t_end, dt)
    red_n = simulate(rom_n.system, u_fn, t_end, dt)

    err_a = max_relative_error(full.output(0), red_a.output(0))
    err_n = max_relative_error(full.output(0), red_n.output(0))
    return {
        "arnoldi": (rom_a.build_time, rom_n.build_time),
        "ode": (full.wall_time, red_a.wall_time, red_n.wall_time),
        "orders": (system.n_states, rom_a.order, rom_n.order),
        "errors": (err_a, err_n),
    }


@pytest.fixture(scope="module")
def ntl_system():
    n_nodes = 36 if paper_scale() else 16
    return nonlinear_transmission_line(
        n_nodes=n_nodes, source="current",
        diode_at_input=False, diode_start=2,
    ).quadratic_linearize()


@pytest.fixture(scope="module")
def rf_system():
    n_nodes = 173 if paper_scale() else 40
    return rf_receiver_chain(n_nodes=n_nodes).to_explicit()


def test_table1(ntl_system, rf_system, benchmark):
    # §3.2 rows (longer horizon than the figure benches so the ODE-solve
    # column dominates Python constant overheads).
    t32 = _measure(
        ntl_system, step_source(0.25), 60.0, 0.02, ORDERS, EXPANSION
    )
    # §3.3 rows.
    u_rf = stack_sources([sine_source(0.25, 0.05), sine_source(0.1, 0.12)])
    t33 = _measure(rf_system, u_rf, 60.0, 0.02, ORDERS, 0.3)

    benchmark.pedantic(
        lambda: simulate(ntl_system, step_source(0.25), 5.0, 0.02),
        rounds=1, iterations=1,
    )

    rows = []
    for label, data in (("Sect. 3.2 Ex.", t32), ("Sect. 3.3 Ex.", t33)):
        rows.append([f"{label} Arnoldi", "-",
                     f"{data['arnoldi'][0]:.2f}s",
                     f"{data['arnoldi'][1]:.2f}s"])
        rows.append([f"{label} ODE solve",
                     f"{data['ode'][0]:.2f}s",
                     f"{data['ode'][1]:.2f}s",
                     f"{data['ode'][2]:.2f}s"])
    print()
    print("=" * 70)
    print("TABLE 1 | runtime comparison (paper: P4 2.8 GHz, ours: this "
          "machine)")
    print("=" * 70)
    print(format_table(
        ["", "Original", "Reduced (Proposed)", "Reduced (NORM)"], rows
    ))
    print(format_table(
        ["example", "full n", "proposed order", "NORM order",
         "err(prop)", "err(NORM)"],
        [
            ["Sect 3.2", t32["orders"][0], t32["orders"][1],
             t32["orders"][2], t32["errors"][0], t32["errors"][1]],
            ["Sect 3.3", t33["orders"][0], t33["orders"][1],
             t33["orders"][2], t33["errors"][0], t33["errors"][1]],
        ],
        title="Model sizes and accuracies",
    ))
    red32 = speedup(t32["ode"][2], t32["ode"][1])
    print(f"\nSect 3.2: proposed ROM simulation is {red32:.0%} faster than "
          "the NORM ROM (paper: 61%)")

    # Shape assertions (the paper's orderings):
    assert t32["orders"][1] < t32["orders"][2], "proposed must be smaller"
    assert t33["orders"][1] < t33["orders"][2]
    # proposed Arnoldi is the slower one (bigger lifted solves)
    assert t32["arnoldi"][0] > t32["arnoldi"][1]
    # both ROMs beat the original in ODE-solve time at paper scale
    if paper_scale():
        assert t32["ode"][1] < t32["ode"][0]
        assert t33["ode"][1] < t33["ode"][0]
        # and the smaller proposed ROM simulates faster than NORM's
        assert t32["ode"][1] < t32["ode"][2] * 1.1
