#!/usr/bin/env python
"""Hot-loop scatter kernels: ``np.add.at`` vs ``scatter_add_rows``.

Before/after microbenchmark for the vectorized scatter that replaced
``np.add.at`` in the streaming contractions (see
``repro.linalg._hotloops``):

* **sparse_kron_apply** — the full ``G2 @ kron(H1, H1)`` streaming
  contraction, end-to-end, with the scatter stage run once through an
  ``np.add.at`` shim (the pre-optimization code path) and once through
  ``scatter_add_rows``.
* **Tucker chain step** — the factored-chain coupling scatter of
  ``FactoredH3Operator._xb_g2_coupling``: COO rows scattering an
  ``(nnz, r)`` complex contribution panel (einsum + scatter timed
  together, exactly as the chain step pays for them).

Both cases run at a circuit-sized state count but with the quadratic
term densified to mesh-circuit density (``COUPLINGS_PER_ROW`` entries
per state) — the RC ladder's native one-entry-per-node ``G2`` never
leaves scatter overhead territory.

Both cases assert ≤ 1e-12 agreement between the two scatters and the
entry lands in the keyed run list of ``benchmarks/BENCH_sweep.json``.
The entry also records :func:`repro.linalg._hotloops.jit_status` so a
run with a working numba toolchain is distinguishable from the
pure-numpy fallback this container exercises.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotloops.py [n_nodes]

``REPRO_BENCH_QUICK=1`` shrinks the problem for CI smoke runs.
"""

import os
import platform
import sys
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.perf_log import append_run  # noqa: E402
from repro.circuits.examples import (  # noqa: E402
    quadratic_rc_ladder_netlist,
)
from repro.linalg import kronecker  # noqa: E402
from repro.linalg._hotloops import jit_status, scatter_add_rows  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

DEFAULT_NODES = 512
#: Quadratic couplings per state row.  The RC ladder's native ``G2`` has
#: one entry per node — far too sparse to stress the scatter — so both
#: cases densify it to mesh-circuit density (every node quadratically
#: coupled to a neighborhood), the regime the kernel was written for.
COUPLINGS_PER_ROW = 16
TUCKER_RANK = 9  # r per factor -> r^2 = 81 columns in the chain panel
REPEATS = 5


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def _mesh_g2(n, rng):
    """A mesh-density quadratic term: COO ``(n, n^2)``, sorted rows."""
    per_row = COUPLINGS_PER_ROW
    rows = np.repeat(np.arange(n), per_row)
    cols = rng.integers(0, n * n, size=rows.size)
    vals = rng.standard_normal(rows.size)
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n * n))


def _add_at_scatter(out, rows, contrib):
    """The pre-optimization scatter, shim-compatible with the kernel."""
    np.add.at(out, rows, contrib)
    return out


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_kron_case(n_nodes=None):
    """End-to-end ``sparse_kron_apply(G2, [H1, H1])``, before vs after."""
    if n_nodes is None:
        n_nodes = 128 if _quick() else DEFAULT_NODES
    system = quadratic_rc_ladder_netlist(n_nodes).compile(sparse=True)
    n = system.n_states
    rng = np.random.default_rng(42)
    g2 = _mesh_g2(n, rng)
    m = 6
    h1 = rng.standard_normal((n, m)) + 1j * rng.standard_normal((n, m))

    original = kronecker.scatter_add_rows
    try:
        kronecker.scatter_add_rows = _add_at_scatter
        before_s, ref = _best_of(
            REPEATS, lambda: kronecker.sparse_kron_apply(g2, [h1, h1])
        )
    finally:
        kronecker.scatter_add_rows = original
    after_s, out = _best_of(
        REPEATS, lambda: kronecker.sparse_kron_apply(g2, [h1, h1])
    )

    agreement = float(np.abs(out - ref).max())
    assert agreement <= 1e-12, f"scatter parity violated: {agreement:.3e}"
    return {
        "n_states": int(n),
        "nnz": int(g2.nnz),
        "out_cols": int(m * m),
        "add_at_s": before_s,
        "scatter_s": after_s,
        "speedup": before_s / after_s,
        "max_abs_disagreement": agreement,
    }


def run_tucker_chain_case(n_nodes=None):
    """The ``_xb_g2_coupling`` chain-step scatter at its real shape."""
    if n_nodes is None:
        n_nodes = 128 if _quick() else DEFAULT_NODES
    system = quadratic_rc_ladder_netlist(n_nodes).compile(sparse=True)
    n = system.n_states
    rng = np.random.default_rng(7)
    g2 = _mesh_g2(n, rng)
    rows = g2.row
    vals = g2.data.astype(complex)
    jj = g2.col % n
    kk = g2.col // n
    r = TUCKER_RANK
    core = rng.standard_normal((r, r, r)) + 1j * rng.standard_normal(
        (r, r, r)
    )
    q = rng.standard_normal((n, r)) + 1j * rng.standard_normal((n, r))
    s = rng.standard_normal((n, r)) + 1j * rng.standard_normal((n, r))

    # Mirrors FactoredH3Operator._xb_g2_coupling: contract the Tucker
    # core against the gathered factors, then scatter the per-element
    # panel into the accumulated right factor.  The einsum is identical
    # before and after the optimization, so only the scatter is timed.
    t = np.einsum("abc,eb,ec->ea", core, q[jj], s[kk], optimize=True)
    panel = vals[:, None] * t

    def step(scatter):
        right = np.zeros((n, t.shape[1]), dtype=t.dtype)
        scatter(right, rows, panel)
        return right

    before_s, ref = _best_of(REPEATS, lambda: step(_add_at_scatter))
    after_s, out = _best_of(REPEATS, lambda: step(scatter_add_rows))

    agreement = float(np.abs(out - ref).max())
    assert agreement <= 1e-12, f"scatter parity violated: {agreement:.3e}"
    return {
        "n_states": int(n),
        "nnz": int(rows.size),
        "panel_cols": int(r),
        "add_at_s": before_s,
        "scatter_s": after_s,
        "speedup": before_s / after_s,
        "max_abs_disagreement": agreement,
    }


def main():
    argv = sys.argv[1:]
    n_nodes = int(argv[0]) if len(argv) > 0 else None
    results = {
        "meta": {
            "bench": "bench_hotloops",
            "generated_unix": time.time(),
            "quick_scale": _quick(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "jit": jit_status(),
        }
    }
    print("sparse_kron_apply scatter, np.add.at vs scatter_add_rows ...")
    results["hotloop_sparse_kron_apply"] = run_kron_case(n_nodes)
    print(
        "  add.at {add_at_s:.4f}s -> scatter {scatter_s:.4f}s "
        "({speedup:.2f}x on n={n_states}, nnz={nnz}, "
        "agreement {max_abs_disagreement:.2e})"
        .format(**results["hotloop_sparse_kron_apply"])
    )

    print("Tucker chain-step scatter, np.add.at vs scatter_add_rows ...")
    results["hotloop_tucker_chain"] = run_tucker_chain_case(n_nodes)
    print(
        "  add.at {add_at_s:.4f}s -> scatter {scatter_s:.4f}s "
        "({speedup:.2f}x on n={n_states}, nnz={nnz}, "
        "agreement {max_abs_disagreement:.2e})"
        .format(**results["hotloop_tucker_chain"])
    )

    count = append_run(OUT_PATH, results)
    print(f"appended run {count} to {OUT_PATH}")


if __name__ == "__main__":
    main()
