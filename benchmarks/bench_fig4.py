"""Figure 4 — MISO RF receiver with a coupled interferer.

Paper §3.3: a 173-unknown receiver driven by the desired signal u1 with
an environmental interferer u2, modeled as a 2-input QLDAE with D1 = 0;
at the same moment orders the proposed method reduces it to 14 states
vs NORM's 27.  Regenerates:

* Fig. 4(b): transient responses (original, proposed ROM, NORM ROM),
* Fig. 4(c): both relative-error traces,

plus the ROM-size rows.
"""

import numpy as np
import pytest

from repro.analysis import (
    format_table,
    relative_error_trace,
    series_summary,
)
from repro.circuits import rf_receiver_chain
from repro.mor import AssociatedTransformMOR, NORMReducer
from repro.simulation import simulate, sine_source, stack_sources

from .conftest import paper_scale

N_NODES = 173 if paper_scale() else 40
ORDERS = (6, 3, 1)
# Expand near the drive band (tones at ω ≈ 0.31 / 0.75): a mid-band real
# point resolves the carriers 10-20x better than DC at the same order.
EXPANSION = 0.3
T_END, DT = 60.0, 0.05


@pytest.fixture(scope="module")
def system():
    return rf_receiver_chain(n_nodes=N_NODES).to_explicit()


@pytest.fixture(scope="module")
def stimulus():
    return stack_sources(
        [sine_source(0.25, 0.05), sine_source(0.10, 0.12)]
    )


@pytest.fixture(scope="module")
def full_transient(system, stimulus):
    return simulate(system, stimulus, T_END, DT)


def test_fig4_proposed(system, stimulus, full_transient, benchmark):
    reducer = AssociatedTransformMOR(
        orders=ORDERS, expansion_points=(EXPANSION,)
    )
    rom = benchmark.pedantic(
        lambda: reducer.reduce(system), rounds=1, iterations=1
    )
    red = simulate(rom.system, stimulus, T_END, DT)
    err = relative_error_trace(full_transient.output(0), red.output(0))
    print()
    print("=" * 70)
    print(f"FIG 4 | MISO RF receiver | {system.n_states} states, "
          f"{system.n_inputs} inputs (paper: 173)")
    print("=" * 70)
    print(series_summary(
        "Fig4(b) original", full_transient.times, full_transient.output(0)
    ))
    print(series_summary("Fig4(b) proposed", red.times, red.output(0)))
    print(series_summary("Fig4(c) err(proposed)", red.times, err))
    print(f"proposed ROM order: {rom.order}  (paper: 14)")
    assert float(err.max()) < 0.05
    test_fig4_proposed.rom_order = rom.order


def test_fig4_norm_baseline(system, stimulus, full_transient, benchmark):
    reducer = NORMReducer(orders=ORDERS, s0=EXPANSION)
    rom = benchmark.pedantic(
        lambda: reducer.reduce(system), rounds=1, iterations=1
    )
    red = simulate(rom.system, stimulus, T_END, DT)
    err = relative_error_trace(full_transient.output(0), red.output(0))
    print()
    print(series_summary("Fig4(b) NORM    ", red.times, red.output(0)))
    print(series_summary("Fig4(c) err(NORM)", red.times, err))
    proposed = getattr(test_fig4_proposed, "rom_order", None)
    print(format_table(
        ["model", "order", "paper"],
        [
            ["original", system.n_states, 173],
            ["proposed", proposed, 14],
            ["NORM", rom.order, 27],
        ],
        title="Fig. 4 ROM sizes",
    ))
    assert float(err.max()) < 0.05
    if proposed is not None:
        assert proposed < rom.order
