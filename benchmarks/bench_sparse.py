#!/usr/bin/env python
"""Sparse-MNA fast path vs dense, on a circuit-sized quadratic RC ladder.

The sparse path keeps CSR matrices alive from MNA stamping through
simulation: ``assemble`` emits CSR ``g1``/``mass``, ``jacobian`` returns
CSR, chord-Newton factors the iteration matrix once with ``splu``, and
the distortion sweep's resolvent solves run through the factory's
per-shift sparse LU cache.  This bench times both paths on the same
netlist (n ≈ 1000–5000 states — the regime the paper's circuit examples
live in, where a dense LU is ``O(n³)`` against the ladder's ``O(n)``
sparse factor) and verifies they agree to rounding.

Usage::

    PYTHONPATH=src python benchmarks/bench_sparse.py [n_states]

Each invocation **appends** one run entry to the keyed list in
``benchmarks/BENCH_sweep.json`` (see ``perf_log.py``), extending the
perf trajectory without overwriting prior entries.  Set
``REPRO_BENCH_QUICK=1`` for a shorter transient/sweep (the state count
stays at circuit scale either way).
"""

import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.perf_log import append_run  # noqa: E402
from repro.analysis.distortion import distortion_sweep  # noqa: E402
from repro.circuits.examples import (  # noqa: E402
    quadratic_rc_ladder_netlist,
)
from repro.simulation.transient import simulate  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

DEFAULT_N = 1536


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


#: Both compile flavors come from one set of stamps — the documented
#: example circuit itself.
make_ladder_netlist = quadratic_rc_ladder_netlist


def run_sparse_transient_case(n_nodes=DEFAULT_N, t_end=None, dt=0.05):
    """Chord-Newton transient: CSR-stamped vs dense-stamped system."""
    if t_end is None:
        t_end = 10.0 if _quick() else 20.0
    net = make_ladder_netlist(n_nodes)
    sparse_sys = net.compile(sparse=True)
    dense_sys = net.compile(sparse=False)
    assert sparse_sys.is_sparse and not dense_sys.is_sparse

    def drive(t):
        return 0.8 * np.cos(0.3 * t)

    start = time.perf_counter()
    res_sparse = simulate(sparse_sys, drive, t_end, dt)
    sparse_s = time.perf_counter() - start
    start = time.perf_counter()
    res_dense = simulate(dense_sys, drive, t_end, dt)
    dense_s = time.perf_counter() - start
    return {
        "n_states": sparse_sys.n_states,
        "steps": int(res_sparse.steps),
        "dense_s": dense_s,
        "sparse_s": sparse_s,
        "speedup": dense_s / sparse_s,
        "sparse_factorizations": res_sparse.jacobian_factorizations,
        "dense_factorizations": res_dense.jacobian_factorizations,
        "max_state_difference": float(
            np.abs(res_sparse.states - res_dense.states).max()
        ),
    }


def run_sparse_sweep_case(n_nodes=None, points=None, amplitude=0.5):
    """HD2/HD3 distortion sweep: sparse-LU resolvents vs dense Schur.

    The sweep is quadratic in memory through the ``H2`` Kronecker
    assembly, so it runs at a smaller (still circuit-sized) n than the
    transient.
    """
    if n_nodes is None:
        n_nodes = 1024
    if points is None:
        points = 8 if _quick() else 15
    net = make_ladder_netlist(n_nodes)
    sparse_sys = net.compile(sparse=True)
    dense_sys = net.compile(sparse=False)
    omegas = np.linspace(0.05, 0.5, points)

    start = time.perf_counter()
    _, hd2_sparse, hd3_sparse = distortion_sweep(
        sparse_sys, omegas, amplitude=amplitude
    )
    sparse_s = time.perf_counter() - start
    start = time.perf_counter()
    _, hd2_dense, hd3_dense = distortion_sweep(
        dense_sys, omegas, amplitude=amplitude
    )
    dense_s = time.perf_counter() - start
    agree = float(
        max(
            np.abs(hd2_sparse - hd2_dense).max() / np.abs(hd2_dense).max(),
            np.abs(hd3_sparse - hd3_dense).max() / np.abs(hd3_dense).max(),
        )
    )
    return {
        "n_states": sparse_sys.n_states,
        "points": int(points),
        "amplitude": amplitude,
        "dense_s": dense_s,
        "sparse_s": sparse_s,
        "speedup": dense_s / sparse_s,
        "max_rel_disagreement": agree,
    }


def main():
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_N
    results = {
        "meta": {
            "bench": "bench_sparse",
            "generated_unix": time.time(),
            "quick_scale": _quick(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        }
    }
    print(f"sparse vs dense transient (n = {n_nodes}) ...")
    results["sparse_transient"] = run_sparse_transient_case(n_nodes)
    print(
        "  dense {dense_s:.3f}s -> sparse {sparse_s:.3f}s "
        "({speedup:.1f}x, {sparse_factorizations} sparse LU, "
        "max state diff {max_state_difference:.2e})"
        .format(**results["sparse_transient"])
    )

    print("sparse vs dense distortion sweep ...")
    results["sparse_distortion_sweep"] = run_sparse_sweep_case()
    print(
        "  dense {dense_s:.3f}s -> sparse {sparse_s:.3f}s "
        "({speedup:.1f}x, max rel disagreement "
        "{max_rel_disagreement:.2e})"
        .format(**results["sparse_distortion_sweep"])
    )

    count = append_run(OUT_PATH, results)
    print(f"appended run {count} to {OUT_PATH}")


if __name__ == "__main__":
    main()
