"""Ablation — single-point vs multipoint frequency expansion.

DESIGN.md abl3, implementing the paper's §4 third bullet: "Non-DC or
multipoint frequency expansion for moment matching is particularly
straightforward with this associated transform approach" because every
associated Hn is a single-``s`` function.

Workload: the Fig-5 varistor circuit under a fast surge.  The surge
front excites mid-band dynamics, so DC-only bases plateau at ~20% error
no matter how many moments they match, while adding one imaginary-axis
expansion point collapses the error by two orders of magnitude at a
*smaller* ROM size.
"""

import numpy as np
import pytest

from repro.analysis import format_table, max_relative_error
from repro.circuits import varistor_surge_protector
from repro.mor import AssociatedTransformMOR
from repro.simulation import simulate, surge_source

from .conftest import paper_scale

N_STATES = 102 if paper_scale() else 30
T_END, DT = 30.0, 0.02

CASES = [
    ("DC only, 8 moments", (6, 0, 2), (0.0,)),
    ("DC only, 14 moments", (12, 0, 2), (0.0,)),
    ("DC + 2j", (2, 0, 1), (0.0, 2.0j)),
    ("DC + 2.5j, richer", (3, 0, 1), (0.0, 2.5j)),
    ("DC + 1.5j + 4j", (3, 0, 1), (0.0, 1.5j, 4.0j)),
]


@pytest.fixture(scope="module")
def system():
    return varistor_surge_protector(n_states=N_STATES)


def test_multipoint_ablation(system, benchmark):
    surge = surge_source(amplitude=9.8e3, tau_rise=0.5, tau_fall=5.0)
    full = simulate(system, surge, T_END, DT)
    rows = []
    errs = {}
    for label, orders, points in CASES:
        rom = AssociatedTransformMOR(
            orders=orders, expansion_points=points
        ).reduce(system)
        red = simulate(rom.system, surge, T_END, DT)
        err = max_relative_error(full.output(0), red.output(0))
        errs[label] = (rom.order, err)
        rows.append([label, str(orders), rom.order, err])
    benchmark.pedantic(
        lambda: AssociatedTransformMOR(
            orders=(2, 0, 1), expansion_points=(0.0, 2.0j)
        ).reduce(system),
        rounds=1, iterations=1,
    )
    print()
    print("=" * 70)
    print(f"ABLATION 3 | expansion-point study on the Fig-5 circuit "
          f"(n = {system.n_states})")
    print("=" * 70)
    print(format_table(
        ["expansion", "(q1,q2,q3)", "ROM order", "max rel err"], rows
    ))
    # Multipoint must beat DC-only even with far fewer moments (the
    # mid-band deficiency only bites at the paper-scale circuit).
    if paper_scale():
        dc_err = errs["DC only, 14 moments"][1]
        mp_order, mp_err = errs["DC + 2j"]
        assert mp_err < dc_err
        assert mp_order <= errs["DC only, 14 moments"][0]
        # and a modestly richer multipoint basis wins decisively
        assert errs["DC + 2.5j, richer"][1] < dc_err / 2
