"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables/figures at
paper scale (state counts matching §3) and prints the corresponding
rows/series.  Absolute runtimes obviously differ from the paper's 2012
Pentium 4 numbers; the *shape* — who wins, by roughly what factor —
is what gets compared (see EXPERIMENTS.md).

Set ``REPRO_BENCH_QUICK=1`` to run structurally identical but smaller
instances (useful for smoke-testing the harness).
"""

import os

import pytest


def paper_scale():
    return os.environ.get("REPRO_BENCH_QUICK", "0") != "1"


@pytest.fixture(scope="session")
def scale():
    return "paper" if paper_scale() else "quick"
