"""Ablation — Kronecker-sum solver strategies (paper §2.3).

DESIGN.md abl2.  The paper's §2.3 argues that (i) the brute-force dense
treatment of the lifted (n + n²) matrix costs O((n+n²)²) per operation
while the Schur trick reduces every ``(2© G1 − sI)`` solve to triangular
sweeps, and (ii) the eq.-(18) Sylvester decoupling splits the H2 Krylov
generation into independent subsystems.  This bench times:

* dense-LU solve of the full (n², n²) Kronecker sum (the naive route),
* sparse-LU of the same operator (exploiting circuit sparsity),
* the Schur-sweep solver (never forms the operator),

across system sizes, plus coupled vs decoupled H2 basis construction.
"""

import time

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.analysis import format_table
from repro.circuits import quadratic_rc_ladder
from repro.linalg import KronSumSolver, kron_sum_power
from repro.mor import AssociatedTransformMOR

from .conftest import paper_scale

SIZES = (20, 40, 60) if paper_scale() else (10, 16)


def _time(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_kron_sum_solver_strategies(benchmark):
    rows = []
    for n in SIZES:
        system = quadratic_rc_ladder(n_nodes=n).to_explicit()
        g1 = system.g1
        rhs = np.random.default_rng(0).standard_normal(n * n)
        ks_sparse = sp.csr_matrix(kron_sum_power(sp.csr_matrix(g1), 2))
        shifted = (ks_sparse - 0.5 * sp.identity(n * n)).tocsc()

        dense_op = ks_sparse.toarray() - 0.5 * np.eye(n * n)
        t_dense = _time(lambda: np.linalg.solve(dense_op, rhs))

        lu = spla.splu(shifted)
        t_sparse = _time(lambda: lu.solve(rhs))

        solver = KronSumSolver(g1)
        t_schur = _time(lambda: solver.solve(rhs, k=2, shift=-0.5))

        rows.append([n, n * n, t_dense, t_sparse, t_schur])
    benchmark.pedantic(
        lambda: KronSumSolver(
            quadratic_rc_ladder(n_nodes=SIZES[-1]).to_explicit().g1
        ).solve(np.ones(SIZES[-1] ** 2), k=2, shift=-0.5),
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 70)
    print("ABLATION 2 | (G1 ⊕ G1 − 0.5 I) solve strategies, "
          "seconds per solve")
    print("=" * 70)
    print(format_table(
        ["n", "lifted n²", "dense LU", "sparse LU", "Schur sweep"], rows
    ))
    # The Schur sweep must beat dense at the largest size.
    assert rows[-1][4] < rows[-1][2]


def test_coupled_vs_decoupled_h2(benchmark):
    n = 60 if paper_scale() else 16
    system = quadratic_rc_ladder(n_nodes=n).to_explicit()
    orders = (6, 3, 0)

    coupled = AssociatedTransformMOR(orders=orders, strategy="coupled")
    decoupled = AssociatedTransformMOR(orders=orders, strategy="decoupled")

    t_coupled = _time(lambda: coupled.build_basis(system), repeats=2)
    t_decoupled = _time(lambda: decoupled.build_basis(system), repeats=2)
    benchmark.pedantic(
        lambda: coupled.build_basis(system), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["strategy", "basis build [s]"],
        [
            ["coupled (eq. 17)", t_coupled],
            ["decoupled (eq. 18, incl. Π solve)", t_decoupled],
        ],
        title=f"H2 subspace construction, n = {n}",
    ))
    rom_c = coupled.reduce(system)
    rom_d = decoupled.reduce(system)
    # Both strategies span the same moment space in exact arithmetic;
    # numerically the deep chains agree to roundoff amplified by their
    # conditioning, so compare the spans with a modest tolerance and
    # also check the reduced models' associated H2 agree functionally.
    proj = rom_d.basis @ (rom_d.basis.T @ rom_c.basis)
    assert np.abs(proj - rom_c.basis).max() < 1e-3
    from repro.volterra import associated_h2

    # evaluate A2(H2) through each ROM's own output map
    out_c = rom_c.system.output @ associated_h2(rom_c.system).eval(0.1)
    out_d = rom_d.system.output @ associated_h2(rom_d.system).eval(0.1)
    assert np.allclose(out_c, out_d, rtol=1e-6, atol=1e-12)
