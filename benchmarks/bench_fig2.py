"""Figure 2 — nonlinear transmission line with voltage source.

Paper §3.1: 100-stage diode line, voltage-driven (lifted QLDAE *with*
the D1 term), reduced to a ~13th-order ROM by matching 6 moments of H1,
3 of A2(H2) and 2 of A3(H3).  Regenerates:

* Fig. 2(b): transient response of the full model vs the proposed ROM,
* Fig. 2(c): the peak-normalized relative error trace.

The benchmark-timed kernel is the projection-basis construction (the
paper's "Arnoldi" phase).
"""

import numpy as np
import pytest

from repro.analysis import (
    format_table,
    max_relative_error,
    relative_error_trace,
    series_summary,
)
from repro.circuits import nonlinear_transmission_line
from repro.mor import AssociatedTransformMOR
from repro.simulation import simulate, sine_source

from .conftest import paper_scale

N_NODES = 100 if paper_scale() else 16
# (8, 3, 2) at s0 = 1.0 gives a stable order-13 ROM — matching the
# paper's reported order exactly.  Lifted QLDAEs are singular at DC, and
# one-sided Galerkin stability is sensitive to (orders, s0); see the
# order-sweep ablation.
ORDERS = (8, 3, 2)
EXPANSION = 1.0
# dt = 0.02: the trapezoidal rule needs to resolve the stiff input
# diode (linearized conductance ~40); dt = 0.05 oscillates.
T_END, DT = 30.0, 0.02


@pytest.fixture(scope="module")
def system():
    ntl = nonlinear_transmission_line(
        n_nodes=N_NODES, source="voltage", diode_at_input=True
    )
    return ntl.quadratic_linearize()


def test_fig2_transient_and_error(system, benchmark):
    reducer = AssociatedTransformMOR(
        orders=ORDERS, expansion_points=(EXPANSION,)
    )
    rom = benchmark.pedantic(
        lambda: reducer.reduce(system), rounds=1, iterations=1
    )
    assert rom.order <= 16

    # Drive level chosen so node voltages stay in the paper's Fig-2
    # range (|v| < 0.08 V): with i_D = e^{40 v}, a 0.15 V swing is deep
    # saturation and outside any Volterra model's validity.
    u = sine_source(amplitude=0.08, frequency=0.08)
    full = simulate(system, u, T_END, DT)
    red = simulate(rom.system, u, T_END, DT)
    err_trace = relative_error_trace(full.output(0), red.output(0))
    err = float(err_trace.max())

    print()
    print("=" * 70)
    print(f"FIG 2 | NTL + voltage source | lifted dim {system.n_states} "
          f"(paper: 100 stages), D1 present: {system.d1 is not None}")
    print("=" * 70)
    print(series_summary("Fig2(b) original ", full.times, full.output(0)))
    print(series_summary("Fig2(b) ROM      ", red.times, red.output(0)))
    print(series_summary("Fig2(c) rel error", full.times, err_trace))
    print(format_table(
        ["quantity", "paper", "measured"],
        [
            ["full order", "~200 (100 stages lifted)", system.n_states],
            ["ROM order", 13, rom.order],
            ["max rel err", "~0.01 (Fig 2c)", err],
            ["basis build time [s]", "n/a", rom.build_time],
        ],
        title="Fig. 2 summary",
    ))
    assert err < 0.02, "Fig-2 ROM accuracy regressed"
    assert np.isfinite(red.states).all()
