"""Figure 2 — nonlinear transmission line with voltage source.

Paper §3.1: 100-stage diode line, voltage-driven (lifted QLDAE *with*
the D1 term), reduced to a ~13th-order ROM by matching 6 moments of H1,
3 of A2(H2) and 2 of A3(H3).  Regenerates:

* Fig. 2(b): transient response of the full model vs the proposed ROM,
* Fig. 2(c): the peak-normalized relative error trace.

The reduce → simulate → compare orchestration runs through
:func:`repro.pipeline.run_pipeline` (one declarative call, the same
path the CLI uses); the benchmark-timed kernel is that whole pipeline,
with the projection-basis construction (the paper's "Arnoldi" phase)
reported separately from ``rom.build_time``.
"""

import numpy as np
import pytest

from repro.analysis import format_table, relative_error_trace, series_summary
from repro.circuits import nonlinear_transmission_line
from repro.pipeline import run_pipeline

from .conftest import paper_scale

N_NODES = 100 if paper_scale() else 16
# (8, 3, 2) at s0 = 1.0 gives a stable order-13 ROM — matching the
# paper's reported order exactly.  Lifted QLDAEs are singular at DC, and
# one-sided Galerkin stability is sensitive to (orders, s0); see the
# order-sweep ablation.
ORDERS = (8, 3, 2)
EXPANSION = 1.0
# dt = 0.02: the trapezoidal rule needs to resolve the stiff input
# diode (linearized conductance ~40); dt = 0.05 oscillates.
T_END, DT = 30.0, 0.02


@pytest.fixture(scope="module")
def system():
    ntl = nonlinear_transmission_line(
        n_nodes=N_NODES, source="voltage", diode_at_input=True
    )
    return ntl.quadratic_linearize()


def test_fig2_transient_and_error(system, benchmark):
    # Drive level chosen so node voltages stay in the paper's Fig-2
    # range (|v| < 0.08 V): with i_D = e^{40 v}, a 0.15 V swing is deep
    # saturation and outside any Volterra model's validity.
    result = benchmark.pedantic(
        lambda: run_pipeline(
            system,
            reduce={"orders": ORDERS, "expansion_points": (EXPANSION,)},
            transient={
                "source": {
                    "kind": "sine", "amplitude": 0.08, "frequency": 0.08,
                },
                "t_end": T_END,
                "dt": DT,
                "compare_full": True,
            },
        ),
        rounds=1,
        iterations=1,
    )
    rom = result.rom
    assert rom.order <= 16

    transient = result.transient
    err_trace = relative_error_trace(
        transient["full_output"], transient["output"]
    )
    err = float(err_trace.max())
    times = transient["times"]

    print()
    print("=" * 70)
    print(f"FIG 2 | NTL + voltage source | lifted dim {system.n_states} "
          f"(paper: 100 stages), D1 present: {system.d1 is not None}")
    print("=" * 70)
    print(series_summary("Fig2(b) original ", times,
                         transient["full_output"]))
    print(series_summary("Fig2(b) ROM      ", times, transient["output"]))
    print(series_summary("Fig2(c) rel error", times, err_trace))
    print(format_table(
        ["quantity", "paper", "measured"],
        [
            ["full order", "~200 (100 stages lifted)", system.n_states],
            ["ROM order", 13, rom.order],
            ["max rel err", "~0.01 (Fig 2c)", err],
            ["basis build time [s]", "n/a", rom.build_time],
        ],
        title="Fig. 2 summary",
    ))
    assert err < 0.02, "Fig-2 ROM accuracy regressed"
    assert np.isfinite(transient["output"]).all()
