"""Figure 3 — nonlinear transmission line with current source.

Paper §3.2: the current-driven variant whose lifted QLDAE has **no** D1
term and x ∈ R^70; at equal moment orders NORM needs a ROM of order 20
while the proposed method needs 9, with near-identical accuracy.
Regenerates:

* Fig. 3(a): transients of the original, the proposed ROM and the NORM
  ROM,
* Fig. 3(b): both relative-error traces,

and prints the ROM-size comparison.  Timed kernels: both subspace
constructions — the proposed method through one declarative
:func:`repro.pipeline.run_pipeline` call, the NORM baseline hand-wired
(the pipeline speaks the paper's reducer; baselines stay explicit).
"""

import numpy as np
import pytest

from repro.analysis import (
    format_table,
    relative_error_trace,
    series_summary,
)
from repro.circuits import nonlinear_transmission_line
from repro.mor import NORMReducer
from repro.pipeline import run_pipeline
from repro.simulation import simulate, step_source

from .conftest import paper_scale

N_NODES = 36 if paper_scale() else 16  # 36 nodes + 34 diodes = 70 states
ORDERS = (6, 3, 2)
EXPANSION = 0.5
T_END, DT = 30.0, 0.05


@pytest.fixture(scope="module")
def system():
    ntl = nonlinear_transmission_line(
        n_nodes=N_NODES,
        source="current",
        diode_at_input=False,
        diode_start=2,
    )
    return ntl.quadratic_linearize()


@pytest.fixture(scope="module")
def full_transient(system):
    return simulate(system, step_source(0.25), T_END, DT)


def test_fig3_proposed(system, full_transient, benchmark):
    result = benchmark.pedantic(
        lambda: run_pipeline(
            system,
            reduce={"orders": ORDERS, "expansion_points": (EXPANSION,)},
            transient={
                "source": {"kind": "step", "amplitude": 0.25},
                "t_end": T_END,
                "dt": DT,
            },
        ),
        rounds=1,
        iterations=1,
    )
    rom = result.rom
    transient = result.transient
    err = relative_error_trace(
        full_transient.output(0), transient["output"]
    )
    print()
    print("=" * 70)
    print(f"FIG 3 | NTL + current source | x in R^{system.n_states} "
          f"(paper: R^70), D1 is None: {system.d1 is None}")
    print("=" * 70)
    print(series_summary(
        "Fig3(a) original", full_transient.times, full_transient.output(0)
    ))
    print(series_summary("Fig3(a) proposed", transient["times"],
                         transient["output"]))
    print(series_summary("Fig3(b) err(proposed)", transient["times"], err))
    print(f"proposed ROM order: {rom.order}  (paper: 9)")
    assert float(err.max()) < 0.05
    test_fig3_proposed.rom_order = rom.order


def test_fig3_norm_baseline(system, full_transient, benchmark):
    reducer = NORMReducer(orders=ORDERS, s0=EXPANSION)
    rom = benchmark.pedantic(
        lambda: reducer.reduce(system), rounds=1, iterations=1
    )
    red = simulate(rom.system, step_source(0.25), T_END, DT)
    err = relative_error_trace(full_transient.output(0), red.output(0))
    print()
    print(series_summary("Fig3(a) NORM    ", red.times, red.output(0)))
    print(series_summary("Fig3(b) err(NORM)", red.times, err))
    proposed_order = getattr(test_fig3_proposed, "rom_order", None)
    rows = [
        ["original", system.n_states, "-"],
        ["proposed", proposed_order, "paper: 9"],
        ["NORM", rom.order, "paper: 20"],
    ]
    print(format_table(["model", "order", "paper value"], rows,
                       title="Fig. 3 ROM sizes"))
    assert float(err.max()) < 0.05
    if proposed_order is not None:
        assert proposed_order < rom.order, (
            "the proposed ROM must be more compact than NORM"
        )
