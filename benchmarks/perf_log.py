"""Append-only JSON perf trajectory shared by the benchmark runners.

``BENCH_sweep.json`` holds a keyed list of runs (``{"runs": [...]}``),
one entry per benchmark invocation, so the perf trajectory accumulates
across PRs instead of each run overwriting the last — regressions stay
visible by diffing consecutive entries.  Files written by the original
single-run format are wrapped into the list on first append.
"""

import json

__all__ = ["append_run", "load_runs"]


def load_runs(path):
    """Return the list of recorded runs in *path* (empty when absent).

    Understands both the keyed-list format and the legacy single-run
    dict written before the trajectory went append-only.  A non-empty
    file that does not parse raises — overwriting it would silently
    destroy the whole trajectory, the exact failure mode the append-only
    format exists to prevent.
    """
    if not path.exists():
        return []
    text = path.read_text()
    if not text.strip():
        return []
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ValueError(
            f"{path} exists but is not valid JSON; refusing to overwrite "
            f"the perf trajectory — repair or move the file first ({exc})"
        ) from exc
    if isinstance(payload, dict) and "runs" in payload:
        if isinstance(payload["runs"], list):
            return payload["runs"]
        raise ValueError(
            f"{path} has a 'runs' key that is not a list; refusing to "
            "overwrite the perf trajectory — repair or move the file first"
        )
    if isinstance(payload, dict) and payload:
        return [payload]  # legacy: the file itself was one run
    if payload in ({}, [], None):
        return []  # vacuous content: nothing to preserve
    raise ValueError(
        f"{path} holds an unrecognized JSON structure; refusing to "
        "overwrite the perf trajectory — repair or move the file first"
    )


def append_run(path, run):
    """Append *run* to the keyed run list in *path*; returns the count."""
    runs = load_runs(path)
    runs.append(run)
    path.write_text(json.dumps({"runs": runs}, indent=2) + "\n")
    return len(runs)
