"""Append-only JSON perf trajectory shared by the benchmark runners.

``BENCH_sweep.json`` holds a keyed list of runs (``{"runs": [...]}``),
one entry per benchmark invocation, so the perf trajectory accumulates
across PRs instead of each run overwriting the last — regressions stay
visible by diffing consecutive entries.  Files written by the original
single-run format are wrapped into the list on first append.

Appends are crash- and concurrency-safe: the read-modify-write runs
under an exclusive ``.lock`` file (``fcntl.flock`` where available,
``O_CREAT | O_EXCL`` spin elsewhere) and the new content lands via a
temp file + ``os.replace``, so two benchmark runs can no longer
interleave and corrupt the trajectory, and a crash mid-write leaves
the previous file intact.
"""

import contextlib
import json
import os
import sys
import tempfile
import time
import tracemalloc

try:
    import fcntl
except ImportError:  # non-POSIX: fall back to O_EXCL spinning
    fcntl = None

try:
    import resource
except ImportError:  # non-POSIX
    resource = None

__all__ = ["append_run", "load_runs", "peak_memory", "traced_peak"]


def peak_memory():
    """JSON-safe snapshot of this process's peak memory so far.

    ``ru_maxrss_bytes`` is the OS-reported lifetime peak RSS (None on
    platforms without ``resource``); ``tracemalloc_peak_bytes`` is the
    allocator-level peak when tracing is active, else None.  Appended
    runs carry this automatically — see :func:`append_run` — so the
    perf trajectory tracks memory alongside wall time.
    """
    rss = None
    if resource is not None:
        usage = resource.getrusage(resource.RUSAGE_SELF)
        # Linux reports KiB, macOS reports bytes.
        scale = 1 if sys.platform == "darwin" else 1024
        rss = int(usage.ru_maxrss) * scale
    traced = None
    if tracemalloc.is_tracing():
        traced = int(tracemalloc.get_traced_memory()[1])
    return {"ru_maxrss_bytes": rss, "tracemalloc_peak_bytes": traced}


def traced_peak(fn):
    """Run *fn* under tracemalloc; return ``(result, peak_bytes)``.

    Peak is measured relative to the call (counters are reset first).
    When tracing is already active the surrounding trace is left
    running and its peak counter is clobbered by the reset — callers
    own one level of tracing at a time.
    """
    started = not tracemalloc.is_tracing()
    if started:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    try:
        result = fn()
        peak = int(tracemalloc.get_traced_memory()[1])
    finally:
        if started:
            tracemalloc.stop()
    return result, peak

#: Give up waiting for a concurrent appender after this many seconds —
#: a run entry is a few KB of JSON, so a healthy holder is gone in
#: milliseconds; a stale lock means a crashed O_EXCL holder.
_LOCK_TIMEOUT_S = 30.0


@contextlib.contextmanager
def _exclusive_lock(path):
    """Hold ``<path>.lock`` exclusively for the duration of the block."""
    lock_path = f"{path}.lock"
    if fcntl is not None:
        # flock: kernel-owned, so the lock dies with the process — a
        # crashed holder can never wedge later benchmark runs.
        handle = open(lock_path, "a+")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()
        return
    # Portable fallback: atomically create the lock file, spin while a
    # competitor holds it, break stale locks.  Staleness is judged by
    # the lock file's own age (its mtime is set at acquisition), never
    # by how long *this* waiter has waited, and breaking goes through
    # an atomic rename-claim: at most one waiter wins the rename of any
    # given lock file, and the claim is re-verified (and restored if a
    # fresh lock was swept up in the stat→rename window) before it is
    # discarded.  Best effort — unlike flock, O_EXCL cannot tie the
    # lock's lifetime to the holder process.
    claim_path = f"{lock_path}.stale.{os.getpid()}"
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            try:
                age = time.time() - os.stat(lock_path).st_mtime
            except OSError:
                age = 0.0  # holder released between open and stat
            if age > _LOCK_TIMEOUT_S:
                try:
                    os.replace(lock_path, claim_path)
                    if (
                        time.time() - os.stat(claim_path).st_mtime
                        > _LOCK_TIMEOUT_S
                    ):
                        os.unlink(claim_path)  # confirmed stale: break it
                    else:
                        # A fresh lock slipped into the stat→rename
                        # window: hand it back.
                        os.replace(claim_path, lock_path)
                except OSError:
                    pass  # another waiter won the claim
            time.sleep(0.05)
    try:
        yield
    finally:
        os.close(fd)
        try:
            os.unlink(lock_path)
        except OSError:
            pass


def load_runs(path):
    """Return the list of recorded runs in *path* (empty when absent).

    Understands both the keyed-list format and the legacy single-run
    dict written before the trajectory went append-only.  A non-empty
    file that does not parse raises — overwriting it would silently
    destroy the whole trajectory, the exact failure mode the append-only
    format exists to prevent.
    """
    if not path.exists():
        return []
    text = path.read_text()
    if not text.strip():
        return []
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ValueError(
            f"{path} exists but is not valid JSON; refusing to overwrite "
            f"the perf trajectory — repair or move the file first ({exc})"
        ) from exc
    if isinstance(payload, dict) and "runs" in payload:
        if isinstance(payload["runs"], list):
            return payload["runs"]
        raise ValueError(
            f"{path} has a 'runs' key that is not a list; refusing to "
            "overwrite the perf trajectory — repair or move the file first"
        )
    if isinstance(payload, dict) and payload:
        return [payload]  # legacy: the file itself was one run
    if payload in ({}, [], None):
        return []  # vacuous content: nothing to preserve
    raise ValueError(
        f"{path} holds an unrecognized JSON structure; refusing to "
        "overwrite the perf trajectory — repair or move the file first"
    )


def append_run(path, run):
    """Append *run* to the keyed run list in *path*; returns the count.

    The whole read-modify-write cycle holds the trajectory's exclusive
    lock, and the updated document is written to a temp file in the
    same directory and moved into place with ``os.replace`` — two
    concurrent bench runs serialize (both entries land) and a crash at
    any point leaves either the old or the new complete file.
    """
    if isinstance(run, dict):
        run.setdefault("peak_memory", peak_memory())
    with _exclusive_lock(path):
        runs = load_runs(path)
        runs.append(run)
        text = json.dumps({"runs": runs}, indent=2) + "\n"
        directory = os.path.dirname(os.fspath(path)) or "."
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(os.fspath(path)) + ".tmp",
            dir=directory,
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return len(runs)
