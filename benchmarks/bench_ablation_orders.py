"""Ablation — moment-order sweep (accuracy vs ROM size).

DESIGN.md abl1.  Sweeps the (q1, q2, q3) moment orders of the proposed
method on the Fig-3 transmission-line system and tabulates ROM order vs
transient error, showing (i) error decreasing with richer subspaces and
(ii) the ROM order growing only *linearly* in the requested orders —
the paper's central complexity claim.
"""

import numpy as np
import pytest

from repro.analysis import format_table, max_relative_error
from repro.circuits import nonlinear_transmission_line
from repro.mor import AssociatedTransformMOR
from repro.simulation import simulate, step_source

from .conftest import paper_scale

N_NODES = 36 if paper_scale() else 16
EXPANSION = 0.5
T_END, DT = 30.0, 0.05

SWEEP = [
    (2, 0, 0),
    (4, 0, 0),
    (6, 0, 0),
    (6, 1, 0),
    (6, 3, 0),
    (6, 3, 1),
    (6, 3, 2),
    (8, 4, 2),
]


@pytest.fixture(scope="module")
def system():
    return nonlinear_transmission_line(
        n_nodes=N_NODES, source="current",
        diode_at_input=False, diode_start=2,
    ).quadratic_linearize()


@pytest.fixture(scope="module")
def full_transient(system):
    return simulate(system, step_source(0.25), T_END, DT)


def test_order_sweep(system, full_transient, benchmark):
    from repro.errors import ConvergenceError

    rows = []
    err_map = {}
    orders_map = {}
    for orders in SWEEP:
        reducer = AssociatedTransformMOR(
            orders=orders, expansion_points=(EXPANSION,)
        )
        rom = reducer.reduce(system)
        try:
            red = simulate(rom.system, step_source(0.25), T_END, DT)
            err = max_relative_error(
                full_transient.output(0), red.output(0)
            )
        except ConvergenceError:
            # An unstable ROM diverging is a *result* of this ablation
            # (one-sided Galerkin gives no stability guarantee).
            err = float("inf")
        err_map[orders] = err
        orders_map[orders] = rom.order
        rows.append([str(orders), rom.order, err,
                     "yes" if rom.details["rom_linear_stable"] else "NO"])
    benchmark.pedantic(
        lambda: AssociatedTransformMOR(
            orders=(6, 3, 0), expansion_points=(EXPANSION,)
        ).reduce(system),
        rounds=1, iterations=1,
    )
    print()
    print("=" * 70)
    print(f"ABLATION 1 | moment-order sweep on the Fig-3 system "
          f"(n = {system.n_states})")
    print("=" * 70)
    print(format_table(
        ["(q1,q2,q3)", "ROM order", "max rel err", "stable"], rows
    ))
    # richer subspaces must help overall: best error with nonlinear
    # moments beats the best linear-only error
    assert err_map[(6, 3, 2)] < err_map[(6, 0, 0)]
    # linear growth of ROM size
    assert orders_map[(6, 3, 2)] <= 6 + 3 + 2
