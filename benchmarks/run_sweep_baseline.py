#!/usr/bin/env python
"""Run the factorization-reuse benches and append a JSON baseline entry.

Executes the quick-scale cases from ``bench_sweep.py`` (the distortion
sweep always runs at paper scale, n ≈ 200, since that is the acceptance
workload and is cheap with caching) and **appends** one run entry to the
keyed list in ``benchmarks/BENCH_sweep.json`` (see ``perf_log.py``), so
the perf trajectory accumulates across PRs and regressions stay visible
instead of each run overwriting the last.

Usage::

    PYTHONPATH=src python benchmarks/run_sweep_baseline.py

Scale is controlled by ``REPRO_BENCH_QUICK`` exactly like the pytest
benches; the runner defaults it to quick (1) when unset.
"""

import os
import platform
import sys
import time
from pathlib import Path

os.environ.setdefault("REPRO_BENCH_QUICK", "1")
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_sweep import (  # noqa: E402
    run_basis_case,
    run_sweep_case,
    run_transient_case,
)
from benchmarks.perf_log import append_run  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"


def main():
    results = {
        "meta": {
            "bench": "run_sweep_baseline",
            "generated_unix": time.time(),
            "quick_scale": os.environ.get("REPRO_BENCH_QUICK") == "1",
            "python": platform.python_version(),
            "machine": platform.machine(),
        }
    }
    print("distortion sweep (paper scale, n ~ 200, 50 points) ...")
    results["distortion_sweep"] = run_sweep_case()
    print(
        "  direct {direct_s:.3f}s -> cached {cached_s:.3f}s "
        "({speedup:.1f}x, max rel disagreement {max_rel_disagreement:.2e})"
        .format(**results["distortion_sweep"])
    )

    print("Fig-2 transient (chord vs exact Newton) ...")
    results["transient_fig2"] = run_transient_case()
    print(
        "  exact {exact_s:.3f}s -> chord {chord_s:.3f}s ({speedup:.2f}x, "
        "{chord_factorizations} LU for {chord_newton_iterations} iters, "
        "max state diff {max_state_difference:.2e})"
        .format(**results["transient_fig2"])
    )

    print("multipoint basis build (shared workspace) ...")
    results["multipoint_basis"] = run_basis_case()
    print(
        "  first {first_build_s:.3f}s -> rebuild {rebuild_s:.3f}s "
        "(workspace reused: {workspace_reused})"
        .format(**results["multipoint_basis"])
    )

    count = append_run(OUT_PATH, results)
    print(f"appended run {count} to {OUT_PATH}")


if __name__ == "__main__":
    main()
