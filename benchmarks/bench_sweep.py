"""Factorization-reuse benchmarks: sweeps, transients, multipoint bases.

Measures the three workloads the resolvent/chord-Newton subsystem
accelerates, each against an in-module re-implementation of the
pre-cache evaluation path (fresh dense solve per resolvent, recursive
kernel recomputation, exact Newton):

* ``distortion_sweep`` over a 50-point ω-grid on the paper-scale
  (n ≈ 200) nonlinear transmission line,
* the Fig-2 transient (`simulate`) with chord vs exact Newton,
* a multipoint associated-transform basis build (shared-workspace reuse).

Run directly through pytest (``pytest benchmarks/bench_sweep.py -s``) or
via ``benchmarks/run_sweep_baseline.py``, which executes the quick-scale
cases and writes ``benchmarks/BENCH_sweep.json`` so future PRs have a
perf trajectory.
"""

import time

import numpy as np

from repro.analysis import distortion_sweep, format_table
from repro.circuits import nonlinear_transmission_line
from repro.mor import AssociatedTransformMOR
from repro.simulation import simulate, sine_source

from .conftest import paper_scale

# The sweep and transient cases always run on the paper-scale circuit
# (n ≈ 200): that is the acceptance workload, and with the cached paths
# it is cheap.  Quick scale shortens the transient horizon and the basis
# system instead of shrinking the matrices (a 32-state LU is too small
# for the factorization cost to matter).
SWEEP_N_NODES = 100  # lifted dim ≈ 200
SWEEP_POINTS = 50
SWEEP_AMPLITUDE = 0.05
TRANSIENT_N_NODES = 100
TRANSIENT_T_END = 30.0 if paper_scale() else 10.0
TRANSIENT_DT = 0.02
BASIS_N_NODES = 100 if paper_scale() else 16
BASIS_ORDERS = (8, 3, 2)
BASIS_POINTS = (0.5, 1.0, 2.0)


def make_ntl_system(n_nodes):
    """Paper §3.1 lifted QLDAE (voltage-driven NTL), explicit form."""
    ntl = nonlinear_transmission_line(
        n_nodes=n_nodes, source="voltage", diode_at_input=True
    )
    return ntl.quadratic_linearize().to_explicit()


def reset_solver_caches(system):
    """Drop the per-system factorization caches (cold-start timing)."""
    for attr in (
        "_resolvent_factory",
        "_volterra_evaluator",
        "_associated_workspace",
    ):
        if hasattr(system, attr):
            delattr(system, attr)


# ---------------------------------------------------------------------------
# legacy (pre-cache) reference path: fresh dense solve per resolvent,
# recursive kernel recomputation — the code shape this PR replaced.
# SISO only, which the sweep systems are.
# ---------------------------------------------------------------------------


def _legacy_resolvent(system, s, rhs):
    n = system.n_states
    return np.linalg.solve(s * np.eye(n) - system.g1, rhs)


def legacy_h1(system, s):
    return _legacy_resolvent(system, s, system.b.astype(complex)[:, 0])


def legacy_h2(system, s1, s2):
    h1a = legacy_h1(system, s1)
    h1b = legacy_h1(system, s2)
    n = system.n_states
    inner = np.zeros(n, dtype=complex)
    if system.d1 is not None:
        inner += system.d1[0] @ (h1a + h1b)
    if system.g2 is not None:
        inner += system.g2 @ (np.kron(h1a, h1b) + np.kron(h1b, h1a))
    return 0.5 * _legacy_resolvent(system, s1 + s2, inner)


def legacy_h3(system, s1, s2, s3):
    n = system.n_states
    s_list = (s1, s2, s3)
    terms = np.zeros(n, dtype=complex)
    if system.g2 is not None:
        h1_cache = {s: legacy_h1(system, s) for s in set(s_list)}
        for i in range(3):
            j, k = [t for t in range(3) if t != i]
            h2_jk = legacy_h2(system, s_list[j], s_list[k])
            terms += system.g2 @ np.kron(h1_cache[s_list[i]], h2_jk)
            terms += system.g2 @ np.kron(h2_jk, h1_cache[s_list[i]])
    if system.d1 is not None:
        for si, sj in ((s1, s2), (s1, s3), (s2, s3)):
            terms += system.d1[0] @ legacy_h2(system, si, sj)
    return _legacy_resolvent(system, s1 + s2 + s3, terms) / 3.0


def legacy_distortion_sweep(system, omegas, amplitude):
    c = system.output
    hd2 = np.empty(omegas.size)
    hd3 = np.empty(omegas.size)
    for idx, w in enumerate(omegas):
        jw = 1j * float(w)
        h1 = abs(complex((c @ legacy_h1(system, jw))[0]))
        h2 = abs(complex((c @ legacy_h2(system, jw, jw))[0]))
        h3 = abs(complex((c @ legacy_h3(system, jw, jw, jw))[0]))
        fund = amplitude * h1
        hd2[idx] = 0.5 * amplitude**2 * h2 / fund if fund else np.inf
        hd3[idx] = 0.25 * amplitude**3 * h3 / fund if fund else np.inf
    return hd2, hd3


# ---------------------------------------------------------------------------
# timed cases (importable by the baseline runner)
# ---------------------------------------------------------------------------


def run_sweep_case(n_nodes=SWEEP_N_NODES, points=SWEEP_POINTS):
    """Time legacy vs cached 50-point distortion sweep; verify agreement."""
    system = make_ntl_system(n_nodes)
    omegas = np.linspace(0.02, 0.5, points)

    start = time.perf_counter()
    hd2_legacy, hd3_legacy = legacy_distortion_sweep(
        system, omegas, SWEEP_AMPLITUDE
    )
    legacy_s = time.perf_counter() - start

    reset_solver_caches(system)
    start = time.perf_counter()
    _, hd2, hd3 = distortion_sweep(system, omegas, amplitude=SWEEP_AMPLITUDE)
    cached_s = time.perf_counter() - start

    agree = float(
        max(
            np.abs(hd2 - hd2_legacy).max() / np.abs(hd2_legacy).max(),
            np.abs(hd3 - hd3_legacy).max() / np.abs(hd3_legacy).max(),
        )
    )
    return {
        "n_states": system.n_states,
        "points": int(points),
        "amplitude": SWEEP_AMPLITUDE,
        "direct_s": legacy_s,
        "cached_s": cached_s,
        "speedup": legacy_s / cached_s,
        "max_rel_disagreement": agree,
    }


def run_transient_case(
    n_nodes=TRANSIENT_N_NODES, t_end=TRANSIENT_T_END, dt=TRANSIENT_DT
):
    """Time exact-Newton vs chord-Newton on the Fig-2 transient."""
    system = make_ntl_system(n_nodes)
    u = sine_source(amplitude=0.08, frequency=0.08)

    exact = simulate(system, u, t_end, dt, reuse_jacobian=False)
    chord = simulate(system, u, t_end, dt, reuse_jacobian=True)
    max_diff = float(np.abs(chord.states - exact.states).max())
    return {
        "n_states": system.n_states,
        "steps": int(exact.steps),
        "exact_s": exact.wall_time,
        "chord_s": chord.wall_time,
        "speedup": exact.wall_time / chord.wall_time,
        "exact_newton_iterations": int(exact.newton_iterations),
        "chord_newton_iterations": int(chord.newton_iterations),
        "chord_factorizations": int(chord.jacobian_factorizations),
        "max_state_difference": max_diff,
    }


def run_basis_case(
    n_nodes=BASIS_N_NODES, orders=BASIS_ORDERS, points=BASIS_POINTS
):
    """Time a multipoint basis build, then a rebuild on the warm caches."""
    system = make_ntl_system(n_nodes)
    reducer = AssociatedTransformMOR(orders=orders, expansion_points=points)

    reset_solver_caches(system)
    start = time.perf_counter()
    basis, _ = reducer.build_basis(system)
    first_s = time.perf_counter() - start
    workspace = getattr(system, "_associated_workspace", None)

    start = time.perf_counter()
    basis2, _ = reducer.build_basis(system)
    rebuild_s = time.perf_counter() - start
    return {
        "n_states": system.n_states,
        "orders": list(orders),
        "expansion_points": [complex(p).real for p in points],
        "basis_columns": int(basis.shape[1]),
        "first_build_s": first_s,
        "rebuild_s": rebuild_s,
        # The rebuild must hit the memoized workspace (one Schur
        # factorization total across both builds and all expansion
        # points); chain generation itself is not cached.
        "workspace_reused": bool(
            workspace is not None
            and getattr(system, "_associated_workspace", None) is workspace
        ),
        "bases_agree": bool(
            basis.shape == basis2.shape
            and np.abs(basis2 - basis @ (basis.T @ basis2)).max() < 1e-8
        ),
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def _print_case(title, rows):
    print()
    print(format_table(["quantity", "value"], rows, title=title))


def test_sweep_factorization_reuse():
    result = run_sweep_case()
    _print_case(
        f"BENCH sweep | NTL n={result['n_states']}, "
        f"{result['points']} points",
        [[k, v] for k, v in result.items()],
    )
    assert result["max_rel_disagreement"] < 1e-8
    assert result["speedup"] > 3.0, (
        f"cached sweep only {result['speedup']:.2f}x faster"
    )


def test_transient_chord_newton():
    result = run_transient_case()
    _print_case(
        f"BENCH transient | NTL n={result['n_states']}, "
        f"{result['steps']} steps",
        [[k, v] for k, v in result.items()],
    )
    assert result["max_state_difference"] < 1e-8
    assert result["speedup"] > 1.5, (
        f"chord Newton only {result['speedup']:.2f}x faster"
    )


def test_multipoint_basis_shared_workspace():
    result = run_basis_case()
    _print_case(
        f"BENCH basis | NTL n={result['n_states']}, "
        f"points={result['expansion_points']}",
        [[k, v] for k, v in result.items()],
    )
    assert result["bases_agree"]
    assert result["workspace_reused"]
