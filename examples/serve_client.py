"""Serve client: drive the ``python -m repro serve`` daemon over HTTP.

The one-shot CLI pays compile + reduce on every invocation; the daemon
keeps them resident.  This example talks to a live daemon the way any
client would — plain HTTP/JSON, stdlib only — and shows the tier
progression the serving layer exists for:

1. ``POST /v1/reduce`` — first contact with the circuit: **cold**
   (full NMOR), and the artifact lands in the store + hot-ROM cache;
2. ``POST /v1/sweep`` — the distortion query is answered from the
   **hot** tier: no compile, no reduce, resident explicit system;
3. the same sweep again — still hot, and bit-identical: serving never
   changes the numbers, only where they come from.

Point it at a running daemon with ``REPRO_SERVE_URL``; with no URL set
it launches its own daemon subprocess on a free port (``--port 0``)
and tears it down at the end.

Run:  python examples/serve_client.py
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

#: CI smoke knob: REPRO_EXAMPLE_QUICK=1 shrinks sizes/horizons so
#: every example runs headless in seconds without changing its story.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "0") == "1"

N_NODES = 96 if QUICK else 512
SPEC = {
    "generator": "quadratic_rc_ladder_netlist",
    "args": {"n_nodes": N_NODES, "r": 10.0, "g_leak": 1.0,
             "g_quad": 0.5, "quad_nodes": 8},
    "compile": {"sparse": True},
}
REDUCE = {"orders": [3, 2, 1], "strategy": "decoupled"}
SWEEP = {"start": 0.05, "stop": 0.5, "points": 8, "amplitude": 0.05}


def post(url, verb, payload):
    request = urllib.request.Request(
        f"{url}/v1/{verb}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=600) as response:
        return json.load(response)


def get(url, path):
    with urllib.request.urlopen(url + path, timeout=60) as response:
        return json.load(response)


def launch_daemon(store_root):
    """``python -m repro serve --port 0`` as a subprocess; parse its URL."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--store", store_root],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env={**os.environ,
             "PYTHONPATH": str(Path(__file__).resolve().parent.parent
                               / "src")},
    )
    line = process.stdout.readline().strip()  # "serving on http://..."
    if not line.startswith("serving on "):
        process.terminate()
        raise RuntimeError(f"unexpected daemon banner: {line!r}")
    return process, line[len("serving on "):]


def main():
    url = os.environ.get("REPRO_SERVE_URL")
    process = None
    store_root = None
    if url is None:
        store_root = tempfile.mkdtemp(prefix="repro-serve-client-")
        process, url = launch_daemon(store_root)
        print(f"launched daemon at {url}")
    else:
        print(f"using daemon at {url}")

    try:
        health = get(url, "/healthz")
        assert health["status"] == "ok", health

        reduced = post(url, "reduce", {"spec": SPEC, "reduce": REDUCE})
        reduction = reduced["reduction"]
        print(f"reduce: n={reduced['system']['n_states']} -> ROM order "
              f"{reduction['rom_order']} served from "
              f"{reduction['served_from']} in "
              f"{reduced['serving']['wall_time_s']:.3f}s")

        payload = {"spec": SPEC, "reduce": REDUCE, "sweep": SWEEP}
        first = post(url, "sweep", payload)
        second = post(url, "sweep", payload)
        for label, served in (("sweep #1", first), ("sweep #2", second)):
            print(f"{label}: served from "
                  f"{served['reduction']['served_from']} in "
                  f"{served['serving']['wall_time_s']:.3f}s")
        assert second["reduction"]["served_from"] == "hot", second
        assert second["sweep"]["hd2"] == first["sweep"]["hd2"]
        print("hot sweep is bit-identical to the first: HD2 @ "
              f"omega={first['sweep']['omegas'][0]:g} is "
              f"{first['sweep']['hd2'][0]:.6e}")

        metrics = get(url, "/metrics")["metrics"]
        print(f"daemon metrics: {metrics['total']} requests, "
              f"tiers {metrics['tiers']}")
    finally:
        if process is not None:
            process.terminate()
            process.wait(timeout=30)
            if store_root is not None:
                shutil.rmtree(store_root, ignore_errors=True)
            print("daemon stopped")


if __name__ == "__main__":
    main()
