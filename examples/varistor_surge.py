"""ZnO varistor surge protection — the paper's §3.4 cubic-ODE workload.

A 102-state RLC surge path with cubic varistor clamps is hit with a
9.8 kV double-exponential pulse (paper Fig. 5).  The cubic Kronecker
term goes through the same associated-transform machinery: for a pure
cubic system, A3(H3)(s) = (sI−G1)^{-1} G3 (sI − G1⊕G1⊕G1)^{-1} b⊗b⊗b
(Corollary 1), realized matrix-free via the three-way Schur sweep.

Run:  python examples/varistor_surge.py
"""

import os

import numpy as np

#: CI smoke knob: REPRO_EXAMPLE_QUICK=1 shrinks sizes/horizons so
#: every example runs headless in seconds without changing its story.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "0") == "1"

from repro.analysis import max_relative_error, series_summary
from repro.circuits import varistor_surge_protector
from repro.mor import AssociatedTransformMOR
from repro.simulation import simulate, surge_source
from repro.systems import CubicODE


def main():
    # Keep the mass form: congruence projection preserves passivity.
    circuit = varistor_surge_protector(n_states=40 if QUICK else 102)
    print(f"surge circuit: {circuit}  "
          f"({circuit.n_states} states — paper: 102)")

    # Multipoint expansion (DC + one mid-band point): the surge front
    # excites frequencies no DC-only moment basis can reach (paper §4).
    rom = AssociatedTransformMOR(
        orders=(3, 0, 1), expansion_points=(0.0, 2.5j)
    ).reduce(circuit)
    print(f"cubic ROM order: {rom.order}  (paper: 8)")

    surge = surge_source(amplitude=9.8e3, tau_rise=0.5, tau_fall=5.0)
    t_end, dt = (6.0, 0.02) if QUICK else (30.0, 0.02)
    full = simulate(circuit, surge, t_end, dt)
    red = simulate(rom.system, surge, t_end, dt)

    # How strongly did the varistors act? Compare with the clamps off.
    linear = CubicODE(
        circuit.g1, circuit.b, g3=None, mass=circuit.mass,
        output=circuit.output,
    )
    lin = simulate(linear, surge, t_end, dt)

    print()
    print(series_summary("input surge [V]", full.times,
                         [surge(t) for t in full.times]))
    print(series_summary("output, clamps off ", lin.times, lin.output(0)))
    print(series_summary("output, full model ", full.times, full.output(0)))
    print(series_summary("output, cubic ROM  ", red.times, red.output(0)))

    err = max_relative_error(full.output(0), red.output(0))
    clamp = 1.0 - np.abs(full.output(0)).max() / np.abs(lin.output(0)).max()
    print(f"\nvaristor clamping of the peak : {clamp:.1%}")
    print(f"ROM max relative error        : {err:.2e}")
    print(f"ODE-solve time  full/ROM      : "
          f"{full.wall_time:.2f}s / {red.wall_time:.2f}s")


if __name__ == "__main__":
    main()
