"""Nonlinear transmission line MOR — the paper's §3.1/§3.2 workloads.

Demonstrates the full pipeline on the diode transmission line:

1. build the circuit netlist (exponential diodes, i = e^{40v} − 1),
2. quadratic-linearize it exactly into a QLDAE (adds one state per
   diode; the voltage-source variant acquires the paper's D1 term),
3. reduce with the associated-transform method and with the NORM
   baseline at the same moment orders,
4. compare transient responses and ROM sizes.

Run:  python examples/transmission_line_mor.py
"""

import os

import numpy as np

#: CI smoke knob: REPRO_EXAMPLE_QUICK=1 shrinks sizes/horizons so
#: every example runs headless in seconds without changing its story.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "0") == "1"

from repro.analysis import format_table, max_relative_error, series_summary
from repro.circuits import nonlinear_transmission_line
from repro.mor import AssociatedTransformMOR, NORMReducer
from repro.simulation import simulate, sine_source, step_source

# Lifted QLDAEs carry structural zero eigenvalues (the added states are
# slaved to the diode manifold), so we expand near DC instead of at DC —
# the paper's §4 notes non-DC expansion is natural in this framework.
EXPANSION = 0.5


def voltage_driven_case():
    print("=" * 68)
    print("Voltage-driven line (paper §3.1): lifted QLDAE WITH D1 term")
    print("=" * 68)
    ntl = nonlinear_transmission_line(
        n_nodes=12 if QUICK else 40, source="voltage", diode_at_input=True
    )
    qldae = ntl.quadratic_linearize()
    print(f"lifted QLDAE: {qldae}  (D1 present: {qldae.d1 is not None})")

    rom = AssociatedTransformMOR(
        orders=(8, 3, 2), expansion_points=(1.0,)
    ).reduce(qldae)
    print(f"associated-transform ROM: order {rom.order} "
          f"(stable: {rom.details['rom_linear_stable']})")

    u = sine_source(amplitude=0.08, frequency=0.08)
    t_end = 6.0 if QUICK else 30.0
    full = simulate(qldae, u, t_end=t_end, dt=0.02)
    red = simulate(rom.system, u, t_end=t_end, dt=0.02)
    err = max_relative_error(full.output(0), red.output(0))
    print(series_summary("full v1(t)", full.times, full.output(0)))
    print(series_summary("ROM  v1(t)", red.times, red.output(0)))
    print(f"max relative error: {err:.2e}\n")


def current_driven_case():
    print("=" * 68)
    print("Current-driven line (paper §3.2): QLDAE WITHOUT D1, "
          "proposed vs NORM")
    print("=" * 68)
    ntl = nonlinear_transmission_line(
        n_nodes=20 if QUICK else 36, source="current", diode_at_input=False, diode_start=2
    )
    qldae = ntl.quadratic_linearize()
    print(f"lifted QLDAE: {qldae}  -> x in R^{qldae.n_states} "
          "(paper: R^70)")

    orders = (6, 3, 2)
    rom_a = AssociatedTransformMOR(
        orders=orders, expansion_points=(EXPANSION,)
    ).reduce(qldae)
    rom_n = NORMReducer(orders=orders, s0=EXPANSION).reduce(qldae)

    u = step_source(0.25)
    t_end = 6.0 if QUICK else 30.0
    full = simulate(qldae, u, t_end=t_end, dt=0.05)
    red_a = simulate(rom_a.system, u, t_end=t_end, dt=0.05)
    red_n = simulate(rom_n.system, u, t_end=t_end, dt=0.05)

    rows = [
        ["original", qldae.n_states, "-", full.wall_time],
        [
            "proposed",
            rom_a.order,
            max_relative_error(full.output(0), red_a.output(0)),
            red_a.wall_time,
        ],
        [
            "NORM",
            rom_n.order,
            max_relative_error(full.output(0), red_n.output(0)),
            red_n.wall_time,
        ],
    ]
    print(format_table(
        ["model", "order", "max rel err", "sim time [s]"], rows
    ))
    print()
    assert rom_a.order < rom_n.order, (
        "the associated-transform ROM should be the more compact one"
    )


if __name__ == "__main__":
    voltage_driven_case()
    current_driven_case()
