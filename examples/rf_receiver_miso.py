"""MISO RF receiver reduction — the paper's §3.3 workload.

A two-input QLDAE: the desired signal u1 drives the LNA input while an
interferer u2 couples into the power-amplifier stage (paper Fig. 4a).
The associated transform handles MIMO transfer matrices directly
(Theorems 1-2 are matrix-valued), so nothing special is needed: the
moment chains simply carry one column per symmetric input multiset.

The demo also shows a hallmark of quadratic nonlinearity: with
u1 at f1 and u2 at f2, the output spectrum contains intermodulation
lines at f1±f2 that a *linear* ROM cannot reproduce.

Run:  python examples/rf_receiver_miso.py
"""

import os

import numpy as np

#: CI smoke knob: REPRO_EXAMPLE_QUICK=1 shrinks sizes/horizons so
#: every example runs headless in seconds without changing its story.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "0") == "1"

from repro.analysis import format_table, max_relative_error
from repro.circuits import rf_receiver_chain
from repro.mor import AssociatedTransformMOR, NORMReducer
from repro.simulation import simulate, sine_source, stack_sources

F_SIGNAL = 0.05
F_INTERF = 0.12


def spectrum_peak(times, trace, freq):
    """Single-bin DFT magnitude at *freq* (ignores leakage)."""
    window = np.hanning(times.size)
    phase = np.exp(-2j * np.pi * freq * times)
    return abs(np.sum(window * trace * phase)) / np.sum(window)


def main():
    rf = rf_receiver_chain(n_nodes=40 if QUICK else 173).to_explicit()
    print(f"receiver model: {rf}  "
          f"({rf.n_states} states, {rf.n_inputs} inputs — paper: 173)")

    orders = (6, 3, 1)
    # expand near the drive band (paper §4: non-DC expansion is natural)
    rom_a = AssociatedTransformMOR(
        orders=orders, expansion_points=(0.3,)
    ).reduce(rf)
    rom_n = NORMReducer(orders=orders, s0=0.3).reduce(rf)
    print(f"proposed ROM order: {rom_a.order}   "
          f"NORM ROM order: {rom_n.order}  (paper: 14 vs 27)")

    u = stack_sources(
        [sine_source(0.25, F_SIGNAL), sine_source(0.10, F_INTERF)]
    )
    t_end, dt = (10.0, 0.05) if QUICK else (60.0, 0.05)
    full = simulate(rf, u, t_end, dt)
    red_a = simulate(rom_a.system, u, t_end, dt)
    red_n = simulate(rom_n.system, u, t_end, dt)

    rows = [
        ["proposed", rom_a.order,
         max_relative_error(full.output(0), red_a.output(0))],
        ["NORM", rom_n.order,
         max_relative_error(full.output(0), red_n.output(0))],
    ]
    print(format_table(["ROM", "order", "max rel err"], rows))

    # Intermodulation: the f1+f2 line exists only through H2.
    tail = slice(full.steps // 2, None)
    lines = []
    for name, freq in [
        ("signal f1", F_SIGNAL),
        ("interferer f2", F_INTERF),
        ("IM2 f1+f2", F_SIGNAL + F_INTERF),
        ("IM2 f2-f1", F_INTERF - F_SIGNAL),
    ]:
        mag_full = spectrum_peak(
            full.times[tail], full.output(0)[tail], freq
        )
        mag_rom = spectrum_peak(
            red_a.times[tail], red_a.output(0)[tail], freq
        )
        lines.append([name, mag_full, mag_rom])
    print()
    print(format_table(
        ["spectral line", "full model", "proposed ROM"], lines,
        title="Output spectrum (single-bin DFT magnitudes)",
    ))
    im2 = lines[2][1]
    assert im2 > 0, "quadratic intermodulation must be present"


if __name__ == "__main__":
    main()
