"""Served sweep: cold reduce vs warm-store query.

The paper's offline/online split, made persistent: the first
``run_pipeline`` call on a circuit pays for the full circuit-scale NMOR
(sparse MNA, low-rank Π, matrix-free lifted chains) and records the
resulting :class:`~repro.store.ReductionArtifact` in a content-addressed
:class:`~repro.store.ModelStore`.  Every later call — here simulated by
a *fresh* store handle, as a new serving process would open — fingerprints
the system, hits the store, reloads the ROM from disk and answers the
distortion sweep on it in milliseconds.  Change one device value and the
fingerprint (hence the key) changes: the store can never serve a stale
reduction.

Run:  python examples/served_sweep.py
"""

import os
import shutil
import tempfile
import time

import numpy as np

#: CI smoke knob: REPRO_EXAMPLE_QUICK=1 shrinks sizes/horizons so
#: every example runs headless in seconds without changing its story.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "0") == "1"

from repro.circuits import quadratic_rc_ladder_netlist
from repro.pipeline import run_pipeline
from repro.store import ModelStore

N_NODES = 256 if QUICK else 1024
REDUCE = {"orders": (3, 2, 1), "strategy": "decoupled"}
SWEEP = {"start": 0.05, "stop": 0.5, "points": 8, "amplitude": 0.05}


def main():
    # Sep-healthy low-rank-G2 ladder: the circuit-scale regime the
    # factored-Π machinery is built for (see the netlist docstring).
    netlist = quadratic_rc_ladder_netlist(
        N_NODES, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=8
    )
    root = tempfile.mkdtemp(prefix="repro-served-sweep-")
    try:
        t0 = time.perf_counter()
        cold = run_pipeline(
            netlist, reduce=REDUCE, sweep=SWEEP,
            store=ModelStore(root), sparse=True,
        )
        cold_s = time.perf_counter() - t0
        print(f"cold: compile + reduce n={cold.system_info['n_states']} "
              f"-> ROM order {cold.rom.order}, sweep "
              f"{len(cold.sweep['omegas'])} points: {cold_s:.3f}s "
              f"(store hit: {cold.store_hit})")

        # A fresh ModelStore handle on the same directory — the
        # "second process" serving the same circuit.
        t0 = time.perf_counter()
        warm = run_pipeline(
            netlist, reduce=REDUCE, sweep=SWEEP,
            store=ModelStore(root), sparse=True,
        )
        warm_s = time.perf_counter() - t0
        print(f"warm: same query from the store:                  "
              f"{warm_s:.3f}s (store hit: {warm.store_hit})")

        drift = max(
            np.abs(warm.sweep["hd2"] - cold.sweep["hd2"]).max(),
            np.abs(warm.sweep["hd3"] - cold.sweep["hd3"]).max(),
        )
        print(f"\nspeedup {cold_s / warm_s:.1f}x, max |Δ(HD)| {drift:.2e}")
        provenance = warm.artifact.provenance
        print(f"artifact: schema {provenance['schema']}, basis "
              f"{provenance['basis_hash'][:12]}…, built by repro "
              f"{provenance['library_version']}")
        assert warm.store_hit is True
        assert drift < 1e-12, "warm store answer drifted"
        # Wall-clock ratios are asserted only at full scale: the CI
        # smoke run (QUICK, shared runners) checks correctness, the
        # timing bar lives in benchmarks/bench_store.py.
        if not QUICK:
            assert cold_s / warm_s > 5.0, "store serving speedup regressed"
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
