"""Harmonic-distortion verification of a ROM, frequency domain.

The paper targets analog/RF verification, where what designers actually
read off a weakly nonlinear block are HD2/HD3 and intermodulation
products.  These are algebraic functions of H1, H2, H3 on the imaginary
axis, so they give a transient-free way to validate a nonlinear ROM over
a whole band — and to see the difference between the proposed method and
two baselines:

* NORM (multivariate moment matching) pins the distortion figures near
  the expansion point essentially exactly;
* the associated transform matches moments of the *diagonal-kernel*
  transforms — a slightly different space — and tracks the distortion
  figures to a few percent at a much smaller ROM;
* degree-2 Carleman bilinearization (the classical route) reproduces H2
  exactly but needs the full n + n² state space to do it.

Run:  python examples/harmonic_distortion.py
"""

import os

import numpy as np

#: CI smoke knob: REPRO_EXAMPLE_QUICK=1 shrinks sizes/horizons so
#: every example runs headless in seconds without changing its story.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "0") == "1"

from repro.analysis import (
    distortion_sweep,
    format_table,
    single_tone_distortion,
)
from repro.circuits import quadratic_rc_ladder
from repro.mor import AssociatedTransformMOR, NORMReducer


def main():
    system = quadratic_rc_ladder(n_nodes=20 if QUICK else 50)
    explicit = system.to_explicit()
    print(f"system: {system}")

    rom_a = AssociatedTransformMOR(orders=(6, 3, 2)).reduce(system)
    rom_n = NORMReducer(orders=(6, 3, 2)).reduce(system)
    print(f"proposed ROM order {rom_a.order}, NORM ROM order {rom_n.order}")

    amplitude = 0.1
    omegas = np.array([0.02, 0.05, 0.1, 0.2, 0.5])
    rows = []
    for w in omegas:
        full = single_tone_distortion(explicit, w, amplitude)
        a_m = single_tone_distortion(rom_a.system, w, amplitude)
        n_m = single_tone_distortion(rom_n.system, w, amplitude)
        rows.append([
            w,
            full["hd2"],
            a_m["hd2"],
            n_m["hd2"],
            abs(a_m["hd2"] / full["hd2"] - 1.0),
        ])
    print()
    print(format_table(
        ["omega", "HD2 full", "HD2 proposed", "HD2 NORM",
         "proposed rel dev"],
        rows,
        title=f"Second-harmonic distortion at A = {amplitude}",
    ))

    _, hd2, hd3 = distortion_sweep(
        explicit, omegas, amplitude=amplitude
    )
    _, hd2_r, hd3_r = distortion_sweep(
        rom_a.system, omegas, amplitude=amplitude
    )
    worst_hd3 = np.max(np.abs(hd3_r / hd3 - 1.0))
    print(f"\nworst HD3 deviation of the proposed ROM over the band: "
          f"{worst_hd3:.2%}")
    assert np.max(np.abs(hd2_r / hd2 - 1.0)) < 0.15


if __name__ == "__main__":
    main()
