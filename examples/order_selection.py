"""Automatic moment-order selection via Hankel singular values.

The paper's §4 (first bullet) argues that, because the associated
transforms are ordinary single-s linear systems, the usual linear-MOR
machinery — Hankel singular values — can pick how many moments of each
Hn to match, "in contrast to the ad hoc order choice in NORM".  This
example runs that procedure on two circuits with different nonlinearity
strengths and shows the selected orders adapting.

Run:  python examples/order_selection.py
"""

import os

import numpy as np

#: CI smoke knob: REPRO_EXAMPLE_QUICK=1 shrinks sizes/horizons so
#: every example runs headless in seconds without changing its story.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "0") == "1"

from repro.analysis import format_table, max_relative_error
from repro.circuits import quadratic_rc_ladder
from repro.mor import AssociatedTransformMOR, suggest_orders
from repro.simulation import simulate, step_source


def demo(g_quad, label):
    system = quadratic_rc_ladder(n_nodes=16 if QUICK else 40, g_quad=g_quad)
    orders, hsvs = suggest_orders(system, probe=6, tol=1e-5)
    print(f"\n--- {label} (g_quad = {g_quad}) ---")
    rows = []
    for name in ("H1", "H2", "H3"):
        if name in hsvs:
            vals = hsvs[name][:6]
            rows.append([name] + [f"{v:.2e}" for v in vals]
                        + [""] * (6 - len(vals)))
        else:
            rows.append([name] + ["-"] * 6)
    print(format_table(
        ["kernel"] + [f"hsv{k}" for k in range(1, 7)], rows,
        title="Hankel singular values of the associated realizations",
    ))
    print(f"selected orders (q1, q2, q3): {orders}")

    rom = AssociatedTransformMOR(orders=orders).reduce(system)
    u = step_source(0.2)
    t_end = 2.0 if QUICK else 8.0
    full = simulate(system.to_explicit(), u, t_end, 0.02)
    red = simulate(rom.system, u, t_end, 0.02)
    err = max_relative_error(full.output(0), red.output(0))
    print(f"ROM order {rom.order}, transient max rel err {err:.2e}")
    return orders


def main():
    strong = demo(0.5, "strongly quadratic ladder")
    weak = demo(1e-6, "nearly linear ladder")
    # The weakly nonlinear system should be assigned fewer H2/H3 moments.
    assert weak[1] <= strong[1]
    assert weak[2] <= strong[2]


if __name__ == "__main__":
    main()
