"""Quickstart: reduce a weakly nonlinear circuit in one pipeline call.

Builds a 70-node RC ladder with quadratic shunt conductances (a QLDAE)
and hands it to :func:`repro.pipeline.run_pipeline`, which runs the
paper's associated-transform reduction and a step-response transient of
ROM vs full model in one declarative call — the same orchestration the
``python -m repro`` CLI exposes (try it on the shipped spec:
``python -m repro sweep examples/specs/rc_ladder.json``).

Run:  python examples/quickstart.py
"""

import os

#: CI smoke knob: REPRO_EXAMPLE_QUICK=1 shrinks sizes/horizons so
#: every example runs headless in seconds without changing its story.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "0") == "1"

from repro.analysis import series_summary
from repro.circuits import quadratic_rc_ladder_netlist
from repro.pipeline import run_pipeline


def main():
    # 1. A nonlinear system: 70 states, quadratic nonlinearities.
    netlist = quadratic_rc_ladder_netlist(n_nodes=24 if QUICK else 70)

    # 2. One declarative call: compile -> reduce (6 moments of H1,
    #    3 of A2(H2) — the associated transform makes H2 a *single-s*
    #    linear system, so this costs 9 Krylov vectors instead of
    #    NORM's O(6 + 3^3)) -> step transient of ROM vs full model.
    result = run_pipeline(
        netlist,
        reduce=(6, 3, 0),
        transient={
            "source": {"kind": "step", "amplitude": 0.25},
            "t_end": 2.0 if QUICK else 10.0,
            "dt": 0.02,
            "compare_full": True,
        },
    )

    rom = result.rom
    print(f"full system : {result.system}")
    print(f"reduced     : order {rom.order} (from {rom.full_order}), "
          f"built in {rom.build_time:.3f}s")

    # 3. Compare (the pipeline already integrated both).
    transient = result.transient
    err = transient["max_rel_error"]
    times = transient["times"]
    print()
    print(series_summary("full  v1(t)", times, transient["full_output"]))
    print(series_summary("ROM   v1(t)", times, transient["output"]))
    print(f"\nmax relative error (peak-normalized): {err:.2e}")
    print(f"full-model ODE solve: {transient['full']['wall_time_s']:.3f}s, "
          f"ROM: {transient['wall_time_s']:.3f}s")
    assert err < 1e-2, "quickstart accuracy regression"


if __name__ == "__main__":
    main()
