"""Quickstart: reduce a weakly nonlinear circuit in five lines.

Builds a 70-node RC ladder with quadratic shunt conductances (a QLDAE),
reduces it with the paper's associated-transform method, and compares a
step-response transient of the full model against the ROM.

Run:  python examples/quickstart.py
"""

import os

import numpy as np

#: CI smoke knob: REPRO_EXAMPLE_QUICK=1 shrinks sizes/horizons so
#: every example runs headless in seconds without changing its story.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "0") == "1"

from repro.analysis import max_relative_error, series_summary
from repro.circuits import quadratic_rc_ladder
from repro.mor import AssociatedTransformMOR
from repro.simulation import simulate, step_source


def main():
    # 1. A nonlinear system: 70 states, quadratic nonlinearities.
    system = quadratic_rc_ladder(n_nodes=24 if QUICK else 70)
    print(f"full system : {system}")

    # 2. Reduce: match 6 moments of H1(s), 3 of A2(H2)(s) — the
    #    associated transform makes H2 a *single-s* linear system, so
    #    this costs 9 Krylov vectors instead of NORM's O(6 + 3^3).
    reducer = AssociatedTransformMOR(orders=(6, 3, 0))
    rom = reducer.reduce(system)
    print(f"reduced     : order {rom.order} (from {rom.full_order}), "
          f"built in {rom.build_time:.3f}s")

    # 3. Simulate both under a step input.
    u = step_source(0.25)
    t_end = 2.0 if QUICK else 10.0
    full = simulate(system.to_explicit(), u, t_end=t_end, dt=0.02)
    red = simulate(rom.system, u, t_end=t_end, dt=0.02)

    # 4. Compare.
    err = max_relative_error(full.output(0), red.output(0))
    print()
    print(series_summary("full  v1(t)", full.times, full.output(0)))
    print(series_summary("ROM   v1(t)", red.times, red.output(0)))
    print(f"\nmax relative error (peak-normalized): {err:.2e}")
    print(f"full-model ODE solve: {full.wall_time:.3f}s, "
          f"ROM: {red.wall_time:.3f}s")
    assert err < 1e-2, "quickstart accuracy regression"


if __name__ == "__main__":
    main()
