"""Parametric corner + Monte-Carlo distortion sweep of a ROM family.

Process-corner and statistical verification is where reduced models pay
off hardest: a designer does not reduce one circuit, they reduce the
same circuit at every corner of a PVT grid plus a few hundred Monte-
Carlo draws.  This demo annotates the quadratic RC ladder with two
ranged parameters (series resistance, quadratic conductance), then asks
:func:`repro.pipeline.run_parametric` for the whole ROM family in one
call.  The family shares work across corners through four reuse tiers —
exact store-key dedup, residual-checked ROM interpolation, warm-started
extended-Krylov reduction, and a cold fallback — and reports HD2/HD3
*distributions* (p50/p99 across corners and draws) instead of a single
curve.

The same annotated netlist round-trips through ``to_dict``/``from_dict``
— the shipped ``examples/specs/rc_ladder_params.json`` feeds the
equivalent CLI verb::

    python -m repro mc examples/specs/rc_ladder_params.json --corners 3

Run:  python examples/mc_demo.py
"""

import os

import numpy as np

#: CI smoke knob: REPRO_EXAMPLE_QUICK=1 shrinks sizes/horizons so
#: every example runs headless in seconds without changing its story.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "0") == "1"

from repro.circuits import quadratic_rc_ladder_netlist
from repro.circuits.netlist import Netlist
from repro.params import Parameter
from repro.pipeline import run_parametric


def annotated_ladder(n_nodes):
    """The demo circuit with two ranged parameter axes bound to it."""
    net = quadratic_rc_ladder_netlist(n_nodes, quad_nodes=4)
    r_sites = tuple(
        i for i, dev in enumerate(net.devices) if hasattr(dev, "resistance")
    )
    g_sites = tuple(
        i for i, dev in enumerate(net.devices)
        if getattr(dev, "g2", 0.0) != 0.0
    )
    return net.with_params([
        Parameter("r_series", "resistance", r_sites, nominal=1.0,
                  low=0.9, high=1.15, sigma=0.03),
        Parameter("g_quad", "g2", g_sites, nominal=0.5,
                  low=0.4, high=0.6, sigma=0.05),
    ])


def main():
    net = annotated_ladder(24 if QUICK else 48)

    # The annotation survives serialization: specs on disk carry their
    # parameter axes, so `python -m repro mc <spec>` sees the same grid.
    restored = Netlist.from_dict(net.to_dict())
    print("parameters:", ", ".join(p.name for p in restored.parameters))

    result = run_parametric(
        restored,
        reduce={"orders": [3, 2, 1], "strategy": "decoupled"},
        sweep={"start": 0.05, "stop": 0.5,
               "points": 7 if QUICK else 15, "amplitude": 0.1},
        mc={"grid_points": 3, "draws": 4 if QUICK else 16, "seed": 2012},
        sparse=True,
    )

    print(f"grid corners: {len(result.corners)}, "
          f"Monte-Carlo draws: {len(result.draws)}")
    print("reuse tiers:", dict(result.tiers))

    dist = result.distributions
    omegas = np.asarray(dist["omegas"])
    corners = dist["corners"]
    print("\n  omega     hd3 p50       hd3 p99")
    for i in range(0, omegas.size, max(1, omegas.size // 5)):
        print(f"  {omegas[i]:5.2f}  {corners['hd3_p50'][i]:.6e}  "
              f"{corners['hd3_p99'][i]:.6e}")

    worst = max(float(np.max(corners["hd3_p99"])), 0.0)
    print(f"\nworst-case HD3 p99 across the band: {worst:.3e}")


if __name__ == "__main__":
    main()
